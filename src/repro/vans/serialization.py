"""Config serialization: VansConfig <-> plain dicts / JSON files.

The original VANS is driven by config files ("users can reconfigure VANS
based on the new parameters"); this module provides the same workflow
for the Python reproduction.  Dicts are nested by subsystem, with only
the overridden keys present — a file describing a new DIMM lists just
what differs from the validated Optane defaults.
"""

from __future__ import annotations

import json
from dataclasses import fields, is_dataclass, replace
from pathlib import Path
from typing import Any, Dict, Union

from repro.common.errors import ConfigError
from repro.media.wear import WearConfig
from repro.media.xpoint import XPointConfig
from repro.vans.config import (
    AitConfig,
    DimmConfig,
    LsqConfig,
    RmwConfig,
    TimingConfig,
    VansConfig,
    WpqConfig,
)

#: dotted section name -> dataclass type, for validation/round-trip
_SECTIONS = {
    "wpq": WpqConfig,
    "dimm": DimmConfig,
    "dimm.lsq": LsqConfig,
    "dimm.rmw": RmwConfig,
    "dimm.ait": AitConfig,
    "dimm.media": XPointConfig,
    "dimm.wear": WearConfig,
    "dimm.timing": TimingConfig,
}


def _to_dict(obj: Any) -> Any:
    if is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _to_dict(getattr(obj, f.name)) for f in fields(obj)}
    return obj


def config_to_dict(config: VansConfig) -> Dict[str, Any]:
    """Full nested dict of every parameter (the dump format)."""
    out = _to_dict(config)
    # the DRAM timing preset serializes by name
    out["dimm"]["dram_timing"] = config.dimm.dram_timing.name
    return out


def _apply(obj, overrides: Dict[str, Any], path: str):
    """Return ``obj`` with nested overrides applied."""
    changes = {}
    valid = {f.name: f for f in fields(obj)}
    for key, value in overrides.items():
        if key not in valid:
            raise ConfigError(f"unknown config key {path}{key!r}")
        current = getattr(obj, key)
        if is_dataclass(current) and isinstance(value, dict):
            changes[key] = _apply(current, value, f"{path}{key}.")
        elif key == "dram_timing" and isinstance(value, str):
            changes[key] = _timing_by_name(value)
        else:
            changes[key] = value
    return replace(obj, **changes)


def _timing_by_name(name: str):
    from repro.dram.timing import DDR3_1600, DDR4_2400, DDR4_2666, PCM_TIMING
    presets = {t.name: t for t in (DDR3_1600, DDR4_2400, DDR4_2666,
                                   PCM_TIMING)}
    if name not in presets:
        raise ConfigError(f"unknown DRAM timing preset {name!r}; "
                          f"choose from {sorted(presets)}")
    return presets[name]


def config_from_dict(overrides: Dict[str, Any],
                     base: VansConfig = None) -> VansConfig:
    """Build a config from ``base`` (default: validated Optane) plus the
    nested ``overrides`` dict.  Unknown keys raise ConfigError."""
    base = base or VansConfig()
    return _apply(base, overrides, "")


def save_config(config: VansConfig, path: Union[str, Path]) -> None:
    """Dump the complete configuration as JSON."""
    with open(path, "w", encoding="ascii") as fh:
        json.dump(config_to_dict(config), fh, indent=2, sort_keys=True)


def load_config(path: Union[str, Path],
                base: VansConfig = None) -> VansConfig:
    """Load a (possibly partial) JSON config file."""
    with open(path, "r", encoding="ascii") as fh:
        overrides = json.load(fh)
    return config_from_dict(overrides, base=base)
