"""VANS top level: the simulated NVRAM memory system.

``VansSystem`` is the object users construct; it owns the iMC, the DIMM
population, and statistics, and implements the :class:`TargetSystem`
interface so LENS and the experiment harness can drive it.  This is the
"trace mode" of the paper (Section IV-C); full-system mode attaches the
same object underneath the CPU model in :mod:`repro.cpu.system`.
"""

from __future__ import annotations

from typing import Optional

from repro.common.units import align_down
from repro.engine.request import CACHE_LINE
from repro.engine.stats import StatsRegistry
from repro.target import TargetSystem
from repro.vans.config import VansConfig
from repro.vans.imc import IntegratedMemoryController


class VansSystem(TargetSystem):
    """App Direct-mode NVRAM memory system (iMC + Optane-like DIMMs)."""

    def __init__(self, config: Optional[VansConfig] = None,
                 track_line_wear: bool = False, instrument=None,
                 flight=None, faults=None) -> None:
        from repro.faults.injector import NULL_FAULTS
        from repro.flight.recorder import NULL_FLIGHT
        from repro.instrument import NULL_BUS
        self.config = config or VansConfig()
        self.stats = StatsRegistry()
        self.instrument = instrument if instrument is not None else NULL_BUS
        self.flight = flight if flight is not None else NULL_FLIGHT
        self.faults = faults if faults is not None else NULL_FAULTS
        self.imc = IntegratedMemoryController(
            self.config, stats=self.stats, track_line_wear=track_line_wear,
            instrument=self.instrument.scope("imc"), flight=self.flight,
            faults=self.faults,
        )
        self.name = f"vans-{self.config.ndimms}dimm"
        self._hist_read = self.stats.histogram("vans.read_latency_ps")
        self._hist_write = self.stats.histogram("vans.write_latency_ps")
        self._collect = self.config.collect_latency_histograms
        # Frozen-config constants hoisted off the per-request path.
        self._frontend_read_ps = self.config.dimm.timing.frontend_read_ps
        self._frontend_write_ps = self.config.dimm.timing.frontend_write_ps
        self._rebuild_fast_paths()

    # -- TargetSystem ---------------------------------------------------

    def _rebuild_fast_paths(self) -> None:
        """Bind uninstrumented read/write variants when nothing records.

        The fast variants compute the exact same timing (frontend hop +
        iMC path + optional latency histogram) minus the flight/telemetry
        branch ladder, so uninstrumented runs stay bit-identical while
        skipping the per-request instrumentation checks.
        """
        if self._uninstrumented():
            self.read = self._read_fast
            self.write = self._write_fast
        else:
            self.__dict__.pop("read", None)
            self.__dict__.pop("write", None)

    def profile_points(self):
        yield ("vans.read", self, "read")
        yield ("vans.write", self, "write")
        yield ("vans.fence", self, "fence")
        yield from self.imc.profile_points()

    def _read_fast(self, addr: int, now: int) -> int:
        done = self.imc.read(addr, now + self._frontend_read_ps)
        if self._collect:
            self._hist_read.record(done - now)
        return done

    def _write_fast(self, addr: int, now: int) -> int:
        accept = self.imc.write(addr, now + self._frontend_write_ps)
        if self._collect:
            self._hist_write.record(accept - now)
        return accept

    def read(self, addr: int, now: int) -> int:
        t = self.config.dimm.timing
        fl = self.flight
        if fl.enabled:
            fl.begin("read", addr, CACHE_LINE, issue_ps=now)
            fl.span("cpu.frontend", now, now + t.frontend_read_ps,
                    phase="read")
        done = self.imc.read(addr, now + t.frontend_read_ps)
        if fl.enabled:
            fl.end(done)
        if self._collect:
            self._hist_read.record(done - now)
        tel = self.telemetry
        if tel.enabled:
            tel.tick(done)
        return done

    def write(self, addr: int, now: int) -> int:
        t = self.config.dimm.timing
        fl = self.flight
        if fl.enabled:
            fl.begin("write", addr, CACHE_LINE, issue_ps=now)
            fl.span("cpu.frontend", now, now + t.frontend_write_ps,
                    phase="write")
        accept = self.imc.write(addr, now + t.frontend_write_ps)
        if fl.enabled:
            fl.end(accept)
        if self._collect:
            self._hist_write.record(accept - now)
        tel = self.telemetry
        if tel.enabled:
            tel.tick(accept)
        return accept

    def fence(self, now: int) -> int:
        fl = self.flight
        if fl.enabled:
            fl.begin("fence", 0, 0, issue_ps=now)
        done = self.imc.fence(now)
        if fl.enabled:
            fl.end(done)
        tel = self.telemetry
        if tel.enabled:
            tel.tick(done)
        return done

    def warm_fill(self, start_addr: int, length: int) -> None:
        """Pre-populate AIT/RMW tag state for a region (fast-forward)."""
        inter = self.imc.interleaver
        if not inter.interleaved:
            self.imc.dimms[0].warm_fill(start_addr, length)
            return
        g = inter.granularity
        addr = align_down(start_addr, g)
        end = start_addr + length
        while addr < end:
            dimm_idx, local = inter.map(addr)
            self.imc.dimms[dimm_idx].warm_fill(local, g)
            addr += g

    def reset_state(self) -> None:
        for dimm in self.imc.dimms:
            dimm.invalidate_buffers()

    def reset(self) -> None:
        """Full warm-cache reset: every station, buffer, wear counter,
        statistic, and instrument-bus signal back to as-built values.

        After this a reused ``VansSystem`` produces byte-identical
        timings, counters, and telemetry to a freshly constructed one
        (the registry's reuse==rebuild bit-identity contract).
        """
        self.imc.reset()
        self.stats.reset()
        self.instrument.reset()
        self._rebuild_fast_paths()

    # -- introspection ----------------------------------------------------

    @property
    def dimm(self):
        """The first DIMM (convenient for single-DIMM experiments)."""
        return self.imc.dimms[0]

    @property
    def rmw_read_amplification(self) -> float:
        return self.dimm.rmw_read_amplification

    @property
    def wear_migrations(self) -> int:
        return sum(d.wear.migrations for d in self.imc.dimms)

    def counters(self) -> dict:
        return self.stats.snapshot()

    def instrument_snapshot(self) -> dict:
        """Structured observability snapshot: stats counters plus the
        pull-gauges of every queueing station on the instrument bus."""
        snap = dict(self.stats.snapshot())
        snap.update(self.instrument.snapshot())
        return snap

    def line_of(self, addr: int) -> int:
        return align_down(addr, CACHE_LINE)
