"""Multi-DIMM interleaving (the iMC address-mapping policy).

LENS's policy prober finds Optane channels interleave at 4KB granularity
(Figure 7a): the first 4KB of a sequential stream lands on one DIMM, the
next 4KB on the next DIMM, and so on.  Non-interleaved mode concatenates
DIMM address spaces instead.
"""

from __future__ import annotations

from typing import Tuple

from repro.common.errors import ConfigError
from repro.common.units import is_power_of_two


class Interleaver:
    """Bijective system-address <-> (dimm, local-address) mapping."""

    def __init__(self, ndimms: int, granularity: int, interleaved: bool) -> None:
        if ndimms < 1:
            raise ConfigError("ndimms must be >= 1")
        if not is_power_of_two(granularity):
            raise ConfigError("interleave granularity must be a power of two")
        self.ndimms = ndimms
        self.granularity = granularity
        self.interleaved = interleaved and ndimms > 1

    def map(self, addr: int) -> Tuple[int, int]:
        """System address -> (dimm index, DIMM-local address)."""
        if not self.interleaved:
            return 0, addr
        g = self.granularity
        granule = addr // g
        dimm = granule % self.ndimms
        local = (granule // self.ndimms) * g + (addr % g)
        return dimm, local

    def unmap(self, dimm: int, local: int) -> int:
        """Inverse of :meth:`map`."""
        if not self.interleaved:
            return local
        g = self.granularity
        granule_local = local // g
        return (granule_local * self.ndimms + dimm) * g + (local % g)
