"""DDR-T transaction channel: the iMC <-> DIMM request/grant protocol.

Optane DIMMs speak DDR-T — DDR4 electricals with a transactional
command layer [49]: the iMC sends a read request and *waits for the
DIMM's grant*; when the data is ready the DIMM arbitrates for the bus
and pushes it back.  The default VANS model folds this into fixed
per-hop latencies; this module is the detailed alternative: explicit
command-slot credits, a shared command bus, and a shared data bus, so
heavy traffic exhibits the request/grant queueing the fixed constants
hide.

Enable with ``TimingConfig.ddrt_detailed = True`` (the validated Optane
configuration keeps it off; the calibration constants already absorb
the average protocol cost).
"""

from __future__ import annotations

from typing import Optional

from repro.common.units import NS
from repro.engine.queueing import FcfsStation, Server
from repro.engine.stats import StatsRegistry


class DdrtChannel:
    """Credit-based transactional channel between one iMC port and one
    DIMM.

    * ``command_slots`` — outstanding transactions the DIMM accepts
      (credits); a request waits for a credit when all are in flight;
    * command bus — serializes request packets (one per transaction);
    * data bus — serializes 64B data transfers, shared by read returns
      and write sends (the "bus redirection" contention point).
    """

    def __init__(
        self,
        command_slots: int = 32,
        command_ps: int = 8 * NS,   # one request/grant packet
        data_ps: int = 6 * NS,      # one 64B data beat group
        stats: Optional[StatsRegistry] = None,
        flight=None,
        faults=None,
        channel: int = 0,
    ) -> None:
        from repro.faults.injector import NULL_FAULTS
        from repro.flight.recorder import NULL_FLIGHT
        self.credits = FcfsStation(command_slots)
        self.command_bus = Server()
        self.data_bus = Server()
        self.command_ps = command_ps
        self.data_ps = data_ps
        self.stats = stats or StatsRegistry()
        self.flight = flight if flight is not None else NULL_FLIGHT
        self.faults = faults if faults is not None else NULL_FAULTS
        self.channel = channel
        self._c_reads = self.stats.counter("ddrt.read_txns")
        self._c_writes = self.stats.counter("ddrt.write_txns")
        # Precompiled dispatch: flight/faults are constructor-fixed, so
        # uninstrumented channels bind transaction variants with the
        # fault/flight ladders compiled out (identical credit admissions
        # and bus serves — timing stays bit-identical).
        if self.flight is NULL_FLIGHT and self.faults is NULL_FAULTS:
            self.send_read_request = self._send_read_request_fast
            self.return_read_data = self._return_read_data_fast
            self.send_write = self._send_write_fast

    def _send_read_request_fast(self, now: int) -> int:
        """Uninstrumented :meth:`send_read_request`."""
        self._c_reads.add()
        granted = self.credits.admit(now)
        return self.command_bus.serve(granted, self.command_ps)

    def _return_read_data_fast(self, ready: int) -> int:
        """Uninstrumented :meth:`return_read_data`."""
        done = self.data_bus.serve(ready, self.data_ps)
        self.credits.retire_at(done)
        return done

    def _send_write_fast(self, now: int) -> int:
        """Uninstrumented :meth:`send_write`."""
        self._c_writes.add()
        granted = self.credits.admit(now)
        cmd_done = self.command_bus.serve(granted, self.command_ps)
        return self.data_bus.serve(cmd_done, self.data_ps)

    def _command_ps(self, now: int) -> int:
        fa = self.faults
        if fa.enabled:
            return self.command_ps + fa.link_extra_ps(
                self.channel, now, self.command_ps)
        return self.command_ps

    def _data_ps(self, now: int) -> int:
        fa = self.faults
        if fa.enabled:
            return self.data_ps + fa.link_extra_ps(
                self.channel, now, self.data_ps)
        return self.data_ps

    def send_read_request(self, now: int) -> int:
        """Issue a read transaction; returns when the DIMM has the
        command (credit acquired + command bus transfer)."""
        self._c_reads.add()
        granted = self.credits.admit(now)
        done = self.command_bus.serve(granted, self._command_ps(granted))
        if self.flight.active:
            self.flight.span("ddrt.credits", now, granted, phase="wait")
            self.flight.span("ddrt.cmd_bus", granted, done, phase="request")
        return done

    def return_read_data(self, ready: int) -> int:
        """DIMM pushes the 64B payload back; frees the credit."""
        done = self.data_bus.serve(ready, self._data_ps(ready))
        if self.flight.active:
            self.flight.span("ddrt.data_bus", ready, done, phase="return")
        self.credits.retire_at(done)
        return done

    def send_write(self, now: int) -> int:
        """Issue a 64B write transaction (command + data outbound)."""
        self._c_writes.add()
        granted = self.credits.admit(now)
        cmd_done = self.command_bus.serve(granted, self._command_ps(granted))
        data_done = self.data_bus.serve(cmd_done, self._data_ps(cmd_done))
        if self.flight.active:
            self.flight.span("ddrt.credits", now, granted, phase="wait")
            self.flight.span("ddrt.cmd_bus", granted, cmd_done, phase="send")
            self.flight.span("ddrt.data_bus", cmd_done, data_done, phase="send")
        return data_done

    def complete_write(self, accepted: int) -> None:
        """DIMM accepted the write into its LSQ; frees the credit."""
        self.credits.retire_at(accepted)

    @property
    def transactions(self) -> int:
        return self._c_reads.value + self._c_writes.value

    def reset(self) -> None:
        """As-built state: free credits, idle buses, zero transaction
        counters (warm-cache lifecycle)."""
        self.credits.reset()
        self.command_bus.reset()
        self.data_bus.reset()
        self._c_reads.reset()
        self._c_writes.reset()
