"""Functional (data-carrying) layer over the timing simulator.

VANS proper is a timing model: buffers track tags, not bytes.  When the
simulator is attached to a full-system host (the paper attaches it to
gem5), the host also needs *data* — and data movement is where
persistence bugs hide.  ``FunctionalMemory`` adds a byte store with the
App Direct visibility/persistence semantics the paper describes:

* a *cached* store is volatile until ``clwb``-flushed;
* an nt store (or a flushed line) is *pending*: it sits in CPU
  write-combining buffers until a fence pushes it into the ADR-protected
  WPQ.  On power failure a pending line **may or may not** have reached
  the ADR domain — exactly the uncertainty persistent-memory crash
  consistency protocols must survive;
* after a fence, everything previously pending is durable (the paper's
  "data reaching the ADR domain is persisted during power outage").

``crash()`` models the power failure: volatile state is lost, durable
state survives, and each pending line independently persists or not
(deterministically under a seed, or forced with a policy) — which is
what lets the :mod:`repro.pmlib` recovery tests enumerate real partial-
persistence interleavings.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.rng import make_rng
from repro.common.units import align_down
from repro.engine.request import CACHE_LINE
from repro.target import TargetSystem
from repro.vans.system import VansSystem


class FunctionalMemory(TargetSystem):
    """VansSystem plus an actual byte store with persistence semantics.

    Values are per-64B-line Python objects (tests typically use ints).
    """

    def __init__(self, timing: Optional[VansSystem] = None) -> None:
        self.timing = timing or VansSystem()
        self.name = f"functional-{self.timing.name}"
        #: durable contents (ADR domain and below — survives a crash)
        self._persistent: Dict[int, object] = {}
        #: flushed/nt data not yet fenced (persists *maybe* on a crash)
        self._pending: Dict[int, object] = {}
        #: CPU-cache-resident dirty values (always lost on a crash)
        self._volatile: Dict[int, object] = {}

    @staticmethod
    def _line(addr: int) -> int:
        return align_down(addr, CACHE_LINE)

    # -- data + timing ----------------------------------------------------

    def load(self, addr: int, now: int):
        """Returns (value, completion_time); newest value wins."""
        line = self._line(addr)
        value = self._volatile.get(
            line, self._pending.get(line, self._persistent.get(line)))
        done = self.timing.read(addr, now)
        return value, done

    def store(self, addr: int, value, now: int, nt: bool = True) -> int:
        """Store ``value``.  nt stores become *pending* at their accept
        time (durable only after a fence); cached stores stay volatile
        until :meth:`flush_line`."""
        line = self._line(addr)
        if nt:
            accept = self.timing.write(addr, now)
            self._pending[line] = value
            self._volatile.pop(line, None)
            return accept
        self._volatile[line] = value
        return now

    def flush_line(self, addr: int, now: int) -> int:
        """clwb: push a cached dirty line into the pending set."""
        line = self._line(addr)
        if line in self._volatile:
            accept = self.timing.write(addr, now)
            self._pending[line] = self._volatile.pop(line)
            return accept
        return now

    def fence(self, now: int) -> int:
        """sfence: everything pending becomes durable."""
        self._persistent.update(self._pending)
        self._pending.clear()
        return self.timing.fence(now)

    # -- TargetSystem timing-only compatibility ----------------------------

    def read(self, addr: int, now: int) -> int:
        return self.timing.read(addr, now)

    def write(self, addr: int, now: int) -> int:
        return self.timing.write(addr, now)

    # -- persistence contract ----------------------------------------------

    def crash(self, pending_policy: str = "random", seed: int = 0) -> None:
        """Power failure.

        ``pending_policy`` controls un-fenced lines: ``"random"`` — each
        independently persists or not (seeded); ``"keep"`` / ``"drop"``
        — force the extremes (useful to enumerate adversarial
        interleavings in tests).
        """
        if pending_policy == "keep":
            self._persistent.update(self._pending)
        elif pending_policy == "random":
            rng = make_rng(seed, "crash")
            for line, value in self._pending.items():
                if rng.random() < 0.5:
                    self._persistent[line] = value
        elif pending_policy != "drop":
            raise ValueError(f"unknown pending_policy {pending_policy!r}")
        self._pending.clear()
        self._volatile.clear()
        self.timing.reset_state()

    def persisted_value(self, addr: int):
        """What recovery would read for this line."""
        return self._persistent.get(self._line(addr))

    @property
    def dirty_volatile_lines(self) -> int:
        return len(self._volatile)

    @property
    def pending_lines(self) -> int:
        return len(self._pending)
