"""Two-socket NUMA wrapper.

Several studies the paper discusses ([41], [59], [65]) observe that
accessing Optane on a *remote* NUMA node degrades sharply, beyond the
usual DRAM NUMA penalty, because the interconnect adds latency on an
already long path and its bandwidth throttles the DIMM's.  This module
models that: a core on node 0 accessing memory homed on node 1 pays a
per-hop interconnect latency plus a shared-link bandwidth constraint.
"""

from __future__ import annotations

from typing import Optional

from repro.common.units import GIB, NS
from repro.engine.queueing import Server
from repro.engine.request import CACHE_LINE
from repro.engine.stats import StatsRegistry
from repro.target import TargetSystem


class NumaSystem(TargetSystem):
    """Address-range NUMA over two memory systems.

    Addresses below ``node_bytes`` are node-local to the (node-0) core;
    addresses above are homed on node 1 and traverse the interconnect.
    """

    def __init__(
        self,
        local: TargetSystem,
        remote: TargetSystem,
        node_bytes: int = 4 * GIB,
        hop_latency_ps: int = 70 * NS,
        link_line_ps: int = 3_500,  # ~18GB/s per direction
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.local = local
        self.remote = remote
        self.node_bytes = node_bytes
        self.hop_latency_ps = hop_latency_ps
        self.stats = stats or StatsRegistry()
        self._link = Server()
        self._link_line_ps = link_line_ps
        self._c_local = self.stats.counter("numa.local")
        self._c_remote = self.stats.counter("numa.remote")
        self.name = f"numa({local.name}|{remote.name})"

    def _route(self, addr: int):
        if addr < self.node_bytes:
            return self.local, addr, False
        return self.remote, addr - self.node_bytes, True

    def read(self, addr: int, now: int) -> int:
        target, local_addr, is_remote = self._route(addr)
        if not is_remote:
            self._c_local.add()
            return target.read(local_addr, now)
        self._c_remote.add()
        # request hop out, data transfer back over the shared link
        start = self._link.serve(now + self.hop_latency_ps,
                                 self._link_line_ps)
        done = target.read(local_addr, start)
        return done + self.hop_latency_ps

    def write(self, addr: int, now: int) -> int:
        target, local_addr, is_remote = self._route(addr)
        if not is_remote:
            self._c_local.add()
            return target.write(local_addr, now)
        self._c_remote.add()
        start = self._link.serve(now + self.hop_latency_ps,
                                 self._link_line_ps)
        return target.write(local_addr, start)

    def fence(self, now: int) -> int:
        done = self.local.fence(now)
        return max(done, self.remote.fence(now) + self.hop_latency_ps)

    def warm_fill(self, start_addr: int, length: int) -> None:
        if start_addr < self.node_bytes:
            self.local.warm_fill(start_addr,
                                 min(length, self.node_bytes - start_addr))
        end = start_addr + length
        if end > self.node_bytes:
            rstart = max(0, start_addr - self.node_bytes)
            self.remote.warm_fill(rstart, end - self.node_bytes - rstart)

    @property
    def remote_fraction(self) -> float:
        total = self._c_local.value + self._c_remote.value
        return self._c_remote.value / total if total else 0.0
