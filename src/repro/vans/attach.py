"""Full-system attach interface (the paper's gem5 coupling).

VANS computes completion times analytically; a host simulator works in
callbacks.  ``AttachedMemory`` bridges the two: the host sends a
:class:`~repro.engine.request.Request` and gets its callback fired by
the discrete-event engine at the request's completion time, with
outstanding-request accounting and optional back-pressure.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import SimulationError
from repro.engine.event import Engine
from repro.engine.request import Op, Request, RequestPool
from repro.engine.stats import StatsRegistry
from repro.target import TargetSystem


class AttachedMemory:
    """Event-driven port over any :class:`TargetSystem`.

    Usage from a host simulator::

        engine = Engine()
        port = AttachedMemory(engine, VansSystem())
        port.send(Request(addr=0x1000, op=Op.READ, issue_ps=engine.now),
                  on_complete=lambda req: core.wakeup(req))
        engine.run()
    """

    def __init__(self, engine: Engine, target: TargetSystem,
                 max_outstanding: int = 64,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.engine = engine
        self.target = target
        self.max_outstanding = max_outstanding
        self.stats = stats or StatsRegistry()
        self._outstanding = 0
        self._c_sent = self.stats.counter("attach.requests")
        self._c_rejected = self.stats.counter("attach.rejected")
        self._hist = self.stats.histogram("attach.latency_ps")
        #: free-list backing :meth:`issue`; hosts that churn through
        #: millions of fire-and-forget requests recycle them here
        self.pool = RequestPool()

    @property
    def outstanding(self) -> int:
        return self._outstanding

    def can_accept(self) -> bool:
        return self._outstanding < self.max_outstanding

    def send(self, request: Request,
             on_complete: Optional[Callable[[Request], None]] = None) -> bool:
        """Issue ``request`` at the engine's current time.

        Returns False (and does nothing) when the port is saturated —
        the host retries later, exactly like a gem5 timing port.  The
        callback fires via the event engine at the completion time.
        """
        if not self.can_accept():
            self._c_rejected.add()
            return False
        if request.issue_ps < self.engine.now:
            raise SimulationError(
                f"request issued in the past ({request.issue_ps} < "
                f"{self.engine.now})")
        self._c_sent.add()
        self._outstanding += 1
        self.target.submit(request)
        self._hist.record(request.latency_ps)

        def _complete() -> None:
            self._outstanding -= 1
            if on_complete is not None:
                on_complete(request)

        self.engine.schedule_at(max(request.complete_ps, self.engine.now),
                                _complete)
        return True

    def issue(self, addr: int, op: Op = Op.READ,
              on_complete: Optional[Callable[[Request], None]] = None) -> bool:
        """Pooled convenience over :meth:`send`.

        Builds the request from the port's :class:`RequestPool` at the
        engine's current time and recycles it as soon as ``on_complete``
        returns — the callback must not retain the request (copy the
        fields it needs).  Returns False when the port is saturated.
        """
        request = self.pool.acquire(addr, op=op, issue_ps=self.engine.now)

        def _recycle(req: Request) -> None:
            if on_complete is not None:
                on_complete(req)
            self.pool.release(req)

        if not self.send(request, on_complete=_recycle):
            self.pool.release(request)
            return False
        return True

    def send_fence(self, now: Optional[int] = None,
                   on_complete: Optional[Callable[[Request], None]] = None
                   ) -> bool:
        """Convenience: issue a FENCE request."""
        issue = self.engine.now if now is None else now
        return self.send(Request(addr=0, op=Op.FENCE, issue_ps=issue),
                         on_complete)

    @property
    def mean_latency_ps(self) -> float:
        return self._hist.mean
