"""Memory Mode: DRAM DIMMs as a direct-mapped cache over NVRAM.

In Memory Mode (Figure 2a) each channel pairs an Optane DIMM with a DRAM
DIMM; the DRAM acts as a direct-mapped, 64B-line cache in front of the
NVRAM, managed by the iMC.  Persistence is *not* provided in this mode,
so :meth:`fence` is a no-op.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.units import GIB
from repro.dram.device import DramDevice
from repro.dram.timing import DDR4_2666, DDR4Timing
from repro.engine.request import CACHE_LINE
from repro.engine.stats import StatsRegistry
from repro.target import TargetSystem
from repro.vans.config import VansConfig
from repro.vans.system import VansSystem


class MemoryModeSystem(TargetSystem):
    """DRAM-cached NVRAM (Optane Memory Mode)."""

    def __init__(
        self,
        nvram_config: Optional[VansConfig] = None,
        dram_capacity: int = 4 * GIB,
        dram_timing: DDR4Timing = DDR4_2666,
        dram_channels: int = 4,
        instrument=None,
        flight=None,
        faults=None,
    ) -> None:
        from repro.faults.injector import NULL_FAULTS
        from repro.flight.recorder import NULL_FLIGHT
        from repro.instrument import NULL_BUS
        self.instrument = instrument if instrument is not None else NULL_BUS
        self.flight = flight if flight is not None else NULL_FLIGHT
        self.faults = faults if faults is not None else NULL_FAULTS
        self.nvram = VansSystem(nvram_config,
                                instrument=self.instrument.scope("nvram"),
                                flight=self.flight,
                                faults=self.faults)
        self.dram = DramDevice(dram_timing, nchannels=dram_channels,
                               capacity_bytes=dram_capacity)
        self.dram_capacity = dram_capacity
        self.nsets = dram_capacity // CACHE_LINE
        # direct-mapped tag store: set index -> (tag, dirty)
        self._tags: Dict[int, tuple] = {}
        self.stats = StatsRegistry()
        self._c_hits = self.stats.counter("memmode.hits")
        self._c_misses = self.stats.counter("memmode.misses")
        self._c_writebacks = self.stats.counter("memmode.writebacks")
        self.name = "memory-mode"

    def profile_points(self):
        yield ("memmode.read", self, "read")
        yield ("memmode.write", self, "write")
        yield ("memmode.fence", self, "fence")
        yield from self.nvram.profile_points()

    def _locate(self, addr: int):
        line = addr // CACHE_LINE
        index = line % self.nsets
        tag = line // self.nsets
        return index, tag

    def _fill(self, index: int, tag: int, dirty: bool, now: int) -> int:
        """Handle miss: evict (write back if dirty), fetch from NVRAM."""
        victim = self._tags.get(index)
        done = now
        if victim is not None and victim[1]:
            victim_addr = (victim[0] * self.nsets + index) * CACHE_LINE
            self._c_writebacks.add()
            done = max(done, self.nvram.write(victim_addr, now))
        fetch_addr = (tag * self.nsets + index) * CACHE_LINE
        done = max(done, self.nvram.read(fetch_addr, now))
        self._tags[index] = (tag, dirty)
        return done

    def read(self, addr: int, now: int) -> int:
        fl = self.flight
        if fl.enabled:
            fl.begin("read", addr, CACHE_LINE, issue_ps=now)
        index, tag = self._locate(addr)
        entry = self._tags.get(index)
        if entry is not None and entry[0] == tag:
            self._c_hits.add()
            done = self.dram.access(addr % self.dram_capacity, False, now)
            if fl.enabled:
                fl.span("memmode.dram", now, done, phase="hit")
                fl.end(done)
            return done
        self._c_misses.add()
        filled = self._fill(index, tag, False, now)
        done = max(filled, self.dram.access(addr % self.dram_capacity, True,
                                            filled))
        if fl.enabled:
            fl.span("memmode.dram", filled, done, phase="fill")
            fl.end(done)
        tel = self.telemetry
        if tel.enabled:
            tel.tick(done)
        return done

    def write(self, addr: int, now: int) -> int:
        fl = self.flight
        if fl.enabled:
            fl.begin("write", addr, CACHE_LINE, issue_ps=now)
        index, tag = self._locate(addr)
        entry = self._tags.get(index)
        if entry is not None and entry[0] == tag:
            self._c_hits.add()
            self._tags[index] = (tag, True)
            done = self.dram.access(addr % self.dram_capacity, True, now)
            if fl.enabled:
                fl.span("memmode.dram", now, done, phase="hit")
                fl.end(done)
            return done
        self._c_misses.add()
        filled = self._fill(index, tag, True, now)
        done = max(filled, self.dram.access(addr % self.dram_capacity, True,
                                            filled))
        if fl.enabled:
            fl.span("memmode.dram", filled, done, phase="fill")
            fl.end(done)
        tel = self.telemetry
        if tel.enabled:
            tel.tick(done)
        return done

    def fence(self, now: int) -> int:
        """Memory Mode offers no persistence; fences order nothing here."""
        return now

    @property
    def hit_rate(self) -> float:
        hits = self._c_hits.value
        total = hits + self._c_misses.value
        return hits / total if total else 0.0

    def reset_state(self) -> None:
        self._tags.clear()
        self.nvram.reset_state()

    def reset(self) -> None:
        """Full warm-cache reset: cache tags, DRAM timing state, the
        backing NVRAM system, and all counters back to as-built."""
        self._tags.clear()
        self.dram.reset()
        self.nvram.reset()
        self.stats.reset()
        self.instrument.reset()
        self._rebuild_fast_paths()

    def instrument_snapshot(self) -> dict:
        """Cache-layer stats plus the backing NVRAM system's snapshot."""
        snap = dict(self.stats.snapshot())
        for path, value in self.nvram.instrument_snapshot().items():
            snap[f"nvram.{path}"] = value
        return snap

    def stat_registries(self) -> list:
        """Own cache stats plus the inner NVRAM system's registry (the
        telemetry sampler reads both; the nvram bus gauges already land
        on this system's root bus via the ``nvram.`` scope)."""
        return [self.stats, self.nvram.stats]
