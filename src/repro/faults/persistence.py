"""Power-failure persistence checking: the ADR domain as an auditor.

The asynchronous-DRAM-refresh (ADR) machinery guarantees that on power
loss the iMC's write pending queue (WPQ) drains to the DIMM, which has
enough stored energy to finish everything already inside it.  So the
*persistence point* of an nt-store is WPQ admission — the moment the
system acknowledges it.  Everything **above** the WPQ is volatile: CPU
cache lines that were never flushed+fenced, stores still in core write
buffers, in-flight DDR-T credits.  And one thing *below* it can betray
the guarantee: the Section V-C Lazy cache absorbs wear-hot blocks into
on-DIMM SRAM instead of writing them through — if that SRAM's drain
path fails on the injected cut (the adversarial scenario this checker
models), the block's acknowledged writes are lost even though the WPQ
accepted them.

:class:`PersistenceChecker` records the write/flush/fence history as
timestamped events (simulated picoseconds, fully deterministic) and,
given a cut time, replays it to compute the post-failure durable image.
Its report names every *lost acknowledged write*: a write the program
was told is persistent whose newest data did not survive.

Domains
-------

``wpq``
    nt-store accepted by the iMC WPQ.  Durable at acknowledgement —
    unless the line's 256B block sits dirty in the Lazy cache at the
    cut (reason ``lazy_dirty``).
``cache``
    regular store completing into the CPU cache hierarchy.  Durable
    only once a flush (``clwb``/``clflushopt``) *and* a subsequent
    fence both land before the cut (reasons ``unflushed`` /
    ``unfenced``).
``lazy``
    write absorbed directly by the Lazy cache.  Durable only after a
    writeback — an eviction write-through — completes before the cut
    (reason ``not_written_back``).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from repro.common.errors import FaultPlanError
from repro.common.units import align_down

#: persistence-report document version (bump on breaking key changes)
PERSISTENCE_SCHEMA = "repro.persistence/1"

#: acknowledgement domains the checker understands
DOMAINS = ("wpq", "cache", "lazy")


@dataclass
class PersistenceReport:
    """What survived an injected power cut, and what did not."""

    cut_ps: int
    #: lines with at least one acknowledged write before the cut
    acked_lines: int = 0
    #: lines whose newest acknowledged write is in the durable image
    durable_lines: int = 0
    #: lost acknowledged writes: ``{addr, ack_ps, domain, reason}``
    lost: List[Dict[str, Any]] = field(default_factory=list)
    #: acked-line counts per acknowledgement domain
    by_domain: Dict[str, int] = field(default_factory=dict)
    #: True when the checker hit its event cap and stopped recording
    saturated: bool = False

    @property
    def lost_count(self) -> int:
        return len(self.lost)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": PERSISTENCE_SCHEMA,
            "cut_ps": self.cut_ps,
            "acked_lines": self.acked_lines,
            "durable_lines": self.durable_lines,
            "lost_count": self.lost_count,
            "lost": [dict(entry) for entry in self.lost],
            "by_domain": dict(self.by_domain),
            "saturated": self.saturated,
        }

    #: reports are round-trippable documents; ``to_dict`` is the
    #: canonical name (``as_dict`` kept as the historical alias)
    to_dict = as_dict

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "PersistenceReport":
        """Rebuild a report from its :meth:`to_dict` document.

        Raises :class:`~repro.common.errors.FaultPlanError` when the
        document fails :func:`validate_report`.
        """
        problems = validate_report(doc)
        if problems:
            raise FaultPlanError(
                "invalid persistence report: " + "; ".join(problems))
        return cls(
            cut_ps=doc["cut_ps"],
            acked_lines=doc["acked_lines"],
            durable_lines=doc["durable_lines"],
            lost=[dict(entry) for entry in doc["lost"]],
            by_domain=dict(doc["by_domain"]),
            saturated=bool(doc.get("saturated", False)),
        )

    def render(self) -> str:
        out = [f"== persistence check @ cut t={self.cut_ps} ps =="]
        out.append(f"acknowledged lines: {self.acked_lines} "
                   f"({', '.join(f'{d}={n}' for d, n in sorted(self.by_domain.items())) or 'none'})")
        out.append(f"durable lines:      {self.durable_lines}")
        out.append(f"LOST acknowledged:  {self.lost_count}")
        for entry in self.lost[:20]:
            out.append(f"  0x{entry['addr']:x} acked t={entry['ack_ps']} "
                       f"via {entry['domain']} ({entry['reason']})")
        if self.lost_count > 20:
            out.append(f"  ... and {self.lost_count - 20} more")
        if self.saturated:
            out.append("warning: event cap hit; history is truncated")
        return "\n".join(out)


#: loss reasons each acknowledgement domain can report
LOSS_REASONS = {
    "wpq": ("lazy_dirty",),
    "cache": ("unflushed", "unfenced"),
    "lazy": ("not_written_back",),
}


def validate_report(doc: Mapping[str, Any]) -> List[str]:
    """Full structural + type check of a persistence-report document
    (mirrors :func:`~repro.faults.plan.validate_plan`); empty when
    valid.  Checked beyond key presence:

    * integer counters are non-negative ints (bools rejected);
    * ``lost`` entries carry int ``addr``/``ack_ps`` and a known
      ``domain``/``reason`` pairing;
    * the counting invariants hold: ``lost_count == len(lost)``,
      ``acked_lines == durable_lines + lost_count``, and ``by_domain``
      sums to ``acked_lines``.
    """
    problems: List[str] = []
    if not isinstance(doc, Mapping):
        return ["report document is not a mapping"]
    if doc.get("schema") != PERSISTENCE_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected "
                        f"{PERSISTENCE_SCHEMA!r}")

    def _int_field(key: str, minimum: int = 0) -> Any:
        if key not in doc:
            problems.append(f"missing key {key!r}")
            return None
        value = doc[key]
        if isinstance(value, bool) or not isinstance(value, int):
            problems.append(f"{key} is {value!r}, expected an int")
            return None
        if value < minimum:
            problems.append(f"{key} is {value}, expected >= {minimum}")
        return value

    _int_field("cut_ps")
    acked = _int_field("acked_lines")
    durable = _int_field("durable_lines")
    lost_count = _int_field("lost_count")

    lost = doc.get("lost")
    if "lost" not in doc:
        problems.append("missing key 'lost'")
    elif not isinstance(lost, list):
        problems.append(f"lost is {type(lost).__name__}, expected a list")
    else:
        if lost_count is not None and lost_count != len(lost):
            problems.append("lost_count does not match len(lost)")
        for index, entry in enumerate(lost):
            if not isinstance(entry, Mapping):
                problems.append(f"lost[{index}] is not a mapping")
                continue
            for key in ("addr", "ack_ps"):
                value = entry.get(key)
                if key not in entry:
                    problems.append(f"lost[{index}] missing {key!r}")
                elif isinstance(value, bool) or not isinstance(value, int):
                    problems.append(
                        f"lost[{index}].{key} is {value!r}, expected an int")
            domain = entry.get("domain")
            if "domain" not in entry:
                problems.append(f"lost[{index}] missing 'domain'")
            elif domain not in DOMAINS:
                problems.append(f"lost[{index}].domain is {domain!r}, "
                                f"expected one of {DOMAINS}")
            reason = entry.get("reason")
            if "reason" not in entry:
                problems.append(f"lost[{index}] missing 'reason'")
            elif domain in LOSS_REASONS and \
                    reason not in LOSS_REASONS[domain]:
                problems.append(
                    f"lost[{index}].reason is {reason!r}, expected one of "
                    f"{LOSS_REASONS[domain]} for domain {domain!r}")

    by_domain = doc.get("by_domain")
    if "by_domain" not in doc:
        problems.append("missing key 'by_domain'")
    elif not isinstance(by_domain, Mapping):
        problems.append("by_domain is not a mapping")
    else:
        total = 0
        ok = True
        for domain, count in by_domain.items():
            if domain not in DOMAINS:
                problems.append(f"by_domain key {domain!r} is not one of "
                                f"{DOMAINS}")
                ok = False
            if isinstance(count, bool) or not isinstance(count, int) \
                    or count < 0:
                problems.append(f"by_domain[{domain!r}] is {count!r}, "
                                f"expected a non-negative int")
                ok = False
            else:
                total += count
        if ok and acked is not None and total != acked:
            problems.append(f"by_domain sums to {total}, expected "
                            f"acked_lines={acked}")
    if "saturated" in doc and not isinstance(doc["saturated"], bool):
        problems.append(f"saturated is {doc['saturated']!r}, expected a bool")
    if None not in (acked, durable, lost_count) and \
            acked != durable + lost_count:
        problems.append(
            f"acked_lines ({acked}) != durable_lines ({durable}) "
            f"+ lost_count ({lost_count})")
    return problems


def validate_persistence(doc: Mapping[str, Any]) -> List[str]:
    """Historical alias for :func:`validate_report`."""
    return validate_report(doc)


class PersistenceChecker:
    """Timestamped write/flush/fence history with cut-time replay.

    All recording methods are cheap appends; nothing is computed until
    :meth:`report`.  Timestamps may arrive out of order (the FCFS
    timing algebra completes banks independently) — the replay sorts.

    Args:
        line_bytes: acknowledgement granularity (64B cache lines).
        block_bytes: Lazy-cache granularity (256B blocks).
        max_events: safety cap across all histories; once hit, further
            events are dropped and the report is flagged ``saturated``.
    """

    def __init__(self, line_bytes: int = 64, block_bytes: int = 256,
                 max_events: int = 2_000_000) -> None:
        self.line_bytes = line_bytes
        self.block_bytes = block_bytes
        self.max_events = max_events
        self._events = 0
        self.saturated = False
        #: line -> [(ack_ps, domain)]
        self._acks: Dict[int, List[Tuple[int, str]]] = {}
        #: line -> [flush_ps]
        self._flushes: Dict[int, List[int]] = {}
        self._fences: List[int] = []
        #: (t, block, +1 absorb / -1 writeback) in arrival order
        self._lazy: List[Tuple[int, int, int]] = []

    # -- recording -------------------------------------------------------

    def _room(self) -> bool:
        if self._events >= self.max_events:
            self.saturated = True
            return False
        self._events += 1
        return True

    def _line_of(self, addr: int) -> int:
        return align_down(addr, self.line_bytes)

    def _block_of(self, addr: int) -> int:
        return align_down(addr, self.block_bytes)

    def ack(self, addr: int, t: int, domain: str = "wpq") -> None:
        """A write to ``addr`` was acknowledged to the program at ``t``."""
        if domain not in DOMAINS:
            raise FaultPlanError(
                f"unknown persistence domain {domain!r}; "
                f"expected one of {DOMAINS}")
        if self._room():
            self._acks.setdefault(self._line_of(addr), []).append((t, domain))

    def flush(self, addr: int, t: int) -> None:
        """A cache-line flush (``clwb``-style) of ``addr`` issued at ``t``."""
        if self._room():
            self._flushes.setdefault(self._line_of(addr), []).append(t)

    def fence(self, t: int) -> None:
        """A persistence fence completed at ``t``."""
        if self._room():
            self._fences.append(t)

    def lazy_absorb(self, addr: int, t: int) -> None:
        """The Lazy cache absorbed the block of ``addr`` (dirty) at ``t``."""
        if self._room():
            self._lazy.append((t, self._block_of(addr), 1))

    def lazy_writeback(self, addr: int, t: int) -> None:
        """The block of ``addr`` was written through to media at ``t``."""
        if self._room():
            self._lazy.append((t, self._block_of(addr), -1))

    # -- replay ------------------------------------------------------------

    def _lazy_dirty_at(self, cut_ps: int) -> set:
        """Blocks whose newest copy sits dirty in the Lazy cache at the
        cut (last absorb <= cut with no later writeback <= cut)."""
        state: Dict[int, int] = {}
        for t, block, kind in sorted(self._lazy):
            if t > cut_ps:
                break
            state[block] = kind
        return {block for block, kind in state.items() if kind == 1}

    def _cache_durable(self, line: int, ack_ps: int, cut_ps: int) -> str:
        """``"durable"`` or the loss reason for a cache-domain ack."""
        flushes = sorted(self._flushes.get(line, ()))
        # earliest flush at/after the ack that lands before the cut
        index = bisect_right(flushes, cut_ps) - 1
        candidates = [f for f in flushes[:index + 1] if f >= ack_ps]
        if not candidates:
            return "unflushed"
        first_flush = candidates[0]
        fences = sorted(self._fences)
        index = bisect_right(fences, cut_ps) - 1
        if any(q >= first_flush for q in fences[:index + 1]):
            return "durable"
        return "unfenced"

    def report(self, cut_ps: int) -> PersistenceReport:
        """Audit the history against a power cut at ``cut_ps``.

        For every line, only the *newest* acknowledged write before the
        cut is judged (earlier versions are superseded — losing them is
        not observable).  Lines are lost when that write's domain did
        not reach the durable image by the cut.
        """
        report = PersistenceReport(cut_ps=cut_ps, saturated=self.saturated)
        lazy_dirty = self._lazy_dirty_at(cut_ps)
        for line in sorted(self._acks):
            acked = [(t, d) for t, d in self._acks[line] if t <= cut_ps]
            if not acked:
                continue
            ack_ps, domain = max(acked)
            report.acked_lines += 1
            report.by_domain[domain] = report.by_domain.get(domain, 0) + 1
            reason = "durable"
            if domain == "wpq":
                # ADR drains the WPQ; the only way to lose a WPQ-accepted
                # write is the Lazy cache holding the block's newest data.
                if self._block_of(line) in lazy_dirty:
                    reason = "lazy_dirty"
            elif domain == "cache":
                reason = self._cache_durable(line, ack_ps, cut_ps)
            elif domain == "lazy":
                if self._block_of(line) in lazy_dirty:
                    reason = "not_written_back"
                else:
                    # block was written back (or never absorbed) by cut
                    wrote_back = any(
                        t >= ack_ps and t <= cut_ps and kind == -1
                        and block == self._block_of(line)
                        for t, block, kind in self._lazy)
                    reason = "durable" if wrote_back else "not_written_back"
            if reason == "durable":
                report.durable_lines += 1
            else:
                report.lost.append({"addr": line, "ack_ps": ack_ps,
                                    "domain": domain, "reason": reason})
        return report
