"""Fault injection and power-failure persistence checking.

The paper's premise is that Optane DIMMs fail in subtle,
microarchitecture-specific ways: the ADR power-fail domain bounds what
survives a power cut (the iMC WPQ drains; everything above it is lost),
media cells wear out and go uncorrectable, and the DDR-T link can
degrade under thermal throttling.  This package makes those failure
modes first-class, schema'd, and deterministic:

* :mod:`repro.faults.plan` — :class:`FaultPlan`/:class:`FaultSpec`
  documents (schema ``repro.faultplan/1``) scheduling power cuts,
  media uncorrectable-error regions, transient media-latency spikes,
  and stuck/slow DDR-T link episodes at simulated times or request
  counts;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, consulted by
  hooks in the event engine, iMC, DDR-T link, DIMM, 3D-XPoint media,
  and the wear leveler.  The default everywhere is the zero-cost
  :data:`NULL_FAULTS` (the ``NULL_BUS``/``NULL_FLIGHT``/
  ``NULL_TELEMETRY`` contract: one attribute load and a branch);
* :mod:`repro.faults.persistence` — :class:`PersistenceChecker`, an
  auditor of the write/fence history that reports *lost acknowledged
  writes* after an injected power cut (what the program was told is
  durable but is not in the post-failure durable image);
* :mod:`repro.faults.report` — the combined fault-run document
  (schema ``repro.faultreport/1``) CLIs and the experiment runner
  attach to results.
"""

from repro.faults.injector import (
    NULL_FAULTS,
    FaultInjector,
    NullFaultInjector,
    current,
    session,
)
from repro.faults.plan import (
    FAULTPLAN_SCHEMA,
    KINDS,
    FaultPlan,
    FaultSpec,
    load_plan,
    power_cut_plan,
    random_plan,
    save_plan,
    validate_plan,
)
from repro.faults.persistence import (
    LOSS_REASONS,
    PERSISTENCE_SCHEMA,
    PersistenceChecker,
    PersistenceReport,
    validate_persistence,
    validate_report,
)
from repro.faults.report import (
    FAULTREPORT_SCHEMA,
    fault_report,
    render_fault_report,
    validate_fault_report,
)

__all__ = [
    "FAULTPLAN_SCHEMA",
    "FAULTREPORT_SCHEMA",
    "KINDS",
    "LOSS_REASONS",
    "NULL_FAULTS",
    "PERSISTENCE_SCHEMA",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NullFaultInjector",
    "PersistenceChecker",
    "PersistenceReport",
    "current",
    "fault_report",
    "load_plan",
    "power_cut_plan",
    "random_plan",
    "render_fault_report",
    "save_plan",
    "session",
    "validate_fault_report",
    "validate_persistence",
    "validate_plan",
    "validate_report",
]
