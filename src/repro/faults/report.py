"""Fault-run reports: one document per injected run.

A fault report (schema ``repro.faultreport/1``) bundles everything a
fault run produced: the plan that drove it, the injector's counters,
and — when the plan contained a power cut that actually triggered — the
persistence audit.  The experiment runner attaches these to
:class:`~repro.experiments.common.ExperimentResult` objects and the
``repro-faults`` CLI writes them with ``--json``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.faults.injector import FaultInjector
from repro.faults.persistence import validate_persistence

#: fault-report document version (bump on breaking key changes)
FAULTREPORT_SCHEMA = "repro.faultreport/1"


def fault_report(injector: FaultInjector) -> Dict[str, Any]:
    """Build the report document for a finished fault run.

    The ``persistence`` key is present only when a power cut triggered
    *and* a checker was attached — a plan whose ``at_request`` ordinal
    the workload never reached produces no audit.
    """
    doc: Dict[str, Any] = {
        "schema": FAULTREPORT_SCHEMA,
        "plan": injector.plan.to_dict(),
        "summary": injector.summary(),
    }
    if injector.cut_ps is not None and injector.checker is not None:
        doc["persistence"] = injector.checker.report(injector.cut_ps).as_dict()
    return doc


def validate_fault_report(doc: Mapping[str, Any]) -> List[str]:
    """Structural check of a fault report; empty list when valid."""
    problems: List[str] = []
    if not isinstance(doc, Mapping):
        return [f"report must be a mapping, got {type(doc).__name__}"]
    if doc.get("schema") != FAULTREPORT_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected "
                        f"{FAULTREPORT_SCHEMA!r}")
    for key in ("plan", "summary"):
        if key not in doc:
            problems.append(f"missing key {key!r}")
    summary = doc.get("summary")
    if isinstance(summary, Mapping):
        for key in ("plan_faults", "requests", "counters"):
            if key not in summary:
                problems.append(f"summary missing {key!r}")
    elif summary is not None:
        problems.append("'summary' must be a mapping")
    if "persistence" in doc:
        sub = doc["persistence"]
        if isinstance(sub, Mapping):
            problems.extend(f"persistence: {p}"
                            for p in validate_persistence(sub))
        else:
            problems.append("'persistence' must be a mapping")
    return problems


def render_fault_report(doc: Mapping[str, Any]) -> str:
    """Human-readable one-screen rendering of a fault report."""
    summary = doc.get("summary", {})
    counters = summary.get("counters", {})
    out = ["== fault run =="]
    plan = doc.get("plan", {})
    desc = plan.get("description") or f"{len(plan.get('faults', []))} fault(s)"
    out.append(f"plan:        {desc} (seed {plan.get('seed', 0)})")
    out.append(f"requests:    {summary.get('requests', 0)}")
    out.append(f"sim horizon: {summary.get('horizon_ps', 0)} ps")
    cut = summary.get("power_cut_ps")
    out.append(f"power cut:   {'t=%d ps' % cut if cut is not None else 'none'}")
    hits = ", ".join(f"{name}={value}" for name, value in sorted(
        counters.items()) if value)
    out.append(f"injected:    {hits or 'nothing'}")
    persistence = doc.get("persistence")
    if persistence:
        out.append("")
        out.append(f"acknowledged lines: {persistence.get('acked_lines', 0)}")
        out.append(f"durable lines:      {persistence.get('durable_lines', 0)}")
        out.append(f"LOST acknowledged:  {persistence.get('lost_count', 0)}")
        for entry in persistence.get("lost", [])[:10]:
            out.append(f"  0x{entry['addr']:x} acked t={entry['ack_ps']} "
                       f"via {entry['domain']} ({entry['reason']})")
        extra = persistence.get("lost_count", 0) - 10
        if extra > 0:
            out.append(f"  ... and {extra} more")
    return "\n".join(out)
