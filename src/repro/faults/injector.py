"""The fault injector: plan-driven hooks on the simulated hardware.

Design mirrors ``NULL_BUS`` / ``NULL_FLIGHT`` / ``NULL_TELEMETRY``
exactly:

* :data:`NULL_FAULTS` is the zero-cost default on every component —
  ``enabled`` is a plain ``False`` class attribute, so hot paths guard
  every hook with one attribute load and a branch;
* a real :class:`FaultInjector` is built from a
  :class:`~repro.faults.plan.FaultPlan` and installed for a run via
  :func:`session`; the target registry threads the active injector
  through every system it builds (iMC, DDR-T channels, DIMM pipeline,
  media, wear leveler);
* an injector built from an **empty plan** returns zero from every
  latency hook and triggers nothing, so its runs are bit-identical to
  :data:`NULL_FAULTS` runs (the zero-cost contract, tested);
* everything the injector decides is a pure function of the plan and
  simulated time / request ordinals — no wall clock, no unseeded
  randomness — so fault runs are as reproducible as clean ones.

Hook inventory (what calls what):

====================  ===================================================
component             hooks
====================  ===================================================
iMC read/write        ``on_request`` (request-count triggers),
                      ``note_write`` (persistence history)
iMC / DDR-T link      ``link_extra_ps`` (stuck/slow link episodes)
DIMM fence path       ``note_fence``
3D-XPoint media       ``media_extra_ps`` (latency spikes + UE retries)
wear leveler          ``migration_extra_ps`` (stretched migrations)
Lazy cache (DIMM)     ``note_lazy_absorb`` / ``note_lazy_writeback``
event engine          ``tick`` (sim-time high-water mark)
====================  ===================================================
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, NamedTuple, Optional, Union

from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.persistence import PersistenceChecker
from repro.flight.recorder import current as current_flight


class NullFaultInjector:
    """No-op injector: the zero-cost default on every component."""

    __slots__ = ()

    enabled = False

    def on_request(self, now: int) -> None:
        pass

    def tick(self, now: int) -> None:
        pass

    def media_extra_ps(self, addr: int, is_write: bool, now: int,
                       service_ps: int) -> int:
        return 0

    def link_extra_ps(self, channel: int, now: int, service_ps: int) -> int:
        return 0

    def migration_extra_ps(self, now: int, base_ps: int) -> int:
        return 0

    def note_write(self, addr: int, issue_ps: int, accept_ps: int) -> None:
        pass

    def note_store(self, addr: int, t: int) -> None:
        pass

    def note_fence(self, done_ps: int) -> None:
        pass

    @contextmanager
    def flush_scope(self) -> Iterator[None]:
        yield

    def note_lazy_absorb(self, addr: int, now: int) -> None:
        pass

    def note_lazy_writeback(self, addr: int, now: int) -> None:
        pass


#: shared no-op injector; holds no state, safe to pass around.
NULL_FAULTS = NullFaultInjector()


class _Episode(NamedTuple):
    """One resolved latency episode on a timeline."""

    start_ps: int
    end_ps: Optional[int]      # None = never ends
    extra_ps: int
    factor: float
    channel: Optional[int]     # link episodes only (None = all)

    def active(self, now: int) -> bool:
        return now >= self.start_ps and (self.end_ps is None
                                         or now < self.end_ps)

    def stretch(self, service_ps: int) -> int:
        return self.extra_ps + int(service_ps * (self.factor - 1.0))


class _UeRegion(NamedTuple):
    """A media address range gone uncorrectable from ``start_ps`` on."""

    start_ps: int
    addr_lo: int
    addr_hi: int
    extra_ps: int


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against the running simulation.

    Args:
        plan: the fault schedule.  Specs with ``at_request`` triggers
            are armed by :meth:`on_request`; time-triggered specs are
            resolved lazily by comparing timestamps (no event needed).
        checker: optional :class:`PersistenceChecker` fed by the
            ``note_*`` hooks; required to audit power cuts.
    """

    enabled = True

    def __init__(self, plan: FaultPlan,
                 checker: Optional[PersistenceChecker] = None) -> None:
        self.plan = plan
        self.checker = checker
        self.requests = 0
        #: highest simulated time any hook has observed
        self.horizon_ps = 0
        #: resolved power-cut time (set at construction for ``at_ps``
        #: cuts, when the request counter trips for ``at_request`` cuts)
        self.cut_ps: Optional[int] = None
        self._cut_request: Optional[int] = None
        self._media_episodes: List[_Episode] = []
        self._link_episodes: List[_Episode] = []
        self._ue_regions: List[_UeRegion] = []
        self.counters: Dict[str, int] = {
            "power_cuts": 0,
            "ue_hits": 0,
            "media_slow_hits": 0,
            "link_slow_hits": 0,
            "injected_ps": 0,
        }
        #: True once :meth:`publish` has registered this injector's
        #: gauges on a bus — the registry publishes onto the *first*
        #: instrumented system only, so merged collection snapshots
        #: (which sum per path across systems) count each fault once.
        self.published = False
        #: fault kinds already marked on the flight timeline (each kind
        #: gets one instant at its first manifestation, not per hit)
        self._announced: set = set()
        #: >0 while inside :meth:`flush_scope` — write completions are
        #: then recorded as cache-line flushes, not WPQ acknowledgements
        self._flush_depth = 0
        for spec in plan.specs:
            self._arm(spec)

    def _instant(self, name: str, ts_ps: int, **detail) -> None:
        """Drop a one-shot instant on the active flight recorder so the
        injected episode is visible in breakdowns and Chrome traces.

        The recorder only records inside an open (sampled) request, so
        the marker is armed until the first manifestation that lands on
        a recorded request — a fault tripping during a sampled-out
        request doesn't burn the one shot.
        """
        if name in self._announced:
            return
        fl = current_flight()
        if not fl.active:
            return
        self._announced.add(name)
        fl.instant("faults", name, ts_ps, **detail)

    def _arm(self, spec: FaultSpec) -> None:
        start = spec.at_ps if spec.at_ps is not None else 0
        end = (start + spec.duration_ps) if spec.duration_ps else None
        if spec.kind == "power_cut":
            if spec.at_ps is not None:
                # keep the earliest cut if a plan schedules several
                if self.cut_ps is None or spec.at_ps < self.cut_ps:
                    self.cut_ps = spec.at_ps
                    self.counters["power_cuts"] += 1
            else:
                if self._cut_request is None or \
                        spec.at_request < self._cut_request:
                    self._cut_request = spec.at_request
        elif spec.kind == "media_ue":
            self._ue_regions.append(_UeRegion(
                start, spec.addr_lo, spec.addr_hi, spec.extra_ps))
        elif spec.kind == "media_slow":
            self._media_episodes.append(_Episode(
                start, end, spec.extra_ps, spec.factor, None))
        elif spec.kind == "link_degrade":
            self._link_episodes.append(_Episode(
                start, end, spec.extra_ps, spec.factor, spec.channel))

    # -- trigger hooks ------------------------------------------------

    def on_request(self, now: int) -> None:
        """Count one memory request; arms request-ordinal triggers."""
        self.requests += 1
        if now > self.horizon_ps:
            self.horizon_ps = now
        if (self._cut_request is not None and self.cut_ps is None
                and self.requests >= self._cut_request):
            self.cut_ps = now
            self.counters["power_cuts"] += 1
        if self.cut_ps is not None:
            self._instant("power_cut", self.cut_ps)

    def tick(self, now: int) -> None:
        """Report simulated-time progress (event-engine hook)."""
        if now > self.horizon_ps:
            self.horizon_ps = now
        if self.cut_ps is not None and now >= self.cut_ps:
            self._instant("power_cut", self.cut_ps)

    # -- latency hooks --------------------------------------------------

    def media_extra_ps(self, addr: int, is_write: bool, now: int,
                       service_ps: int) -> int:
        """Extra picoseconds for one media access at ``now``."""
        extra = 0
        for episode in self._media_episodes:
            if episode.active(now):
                extra += episode.stretch(service_ps)
                self.counters["media_slow_hits"] += 1
                self._instant("media_slow", now)
        if not is_write:
            for region in self._ue_regions:
                if now >= region.start_ps and \
                        region.addr_lo <= addr < region.addr_hi:
                    extra += region.extra_ps
                    self.counters["ue_hits"] += 1
                    self._instant("media_ue", now, addr=addr)
        if extra:
            self.counters["injected_ps"] += extra
        return extra

    def link_extra_ps(self, channel: int, now: int, service_ps: int) -> int:
        """Extra picoseconds for one DDR-T hop on ``channel``."""
        extra = 0
        for episode in self._link_episodes:
            if episode.active(now) and (episode.channel is None
                                        or episode.channel == channel):
                extra += episode.stretch(service_ps)
                self.counters["link_slow_hits"] += 1
                self._instant("link_degrade", now, channel=channel)
        if extra:
            self.counters["injected_ps"] += extra
        return extra

    def migration_extra_ps(self, now: int, base_ps: int) -> int:
        """Extra picoseconds for a wear migration starting at ``now``
        (media-latency episodes stretch block copies too)."""
        extra = 0
        for episode in self._media_episodes:
            if episode.active(now):
                extra += episode.stretch(base_ps)
        if extra:
            self.counters["injected_ps"] += extra
        return extra

    # -- persistence-history hooks ---------------------------------------

    def note_write(self, addr: int, issue_ps: int, accept_ps: int) -> None:
        if accept_ps > self.horizon_ps:
            self.horizon_ps = accept_ps
        if self.checker is not None:
            if self._flush_depth:
                # a flush rides the nt-store datapath for timing, but
                # persistency-wise it writes back an existing cache line
                # rather than acknowledging new data
                self.checker.flush(addr, accept_ps)
            else:
                self.checker.ack(addr, accept_ps, domain="wpq")

    def note_store(self, addr: int, t: int) -> None:
        """A regular (cached) store retired at ``t`` — acknowledged to
        the program but volatile until flushed and fenced."""
        if t > self.horizon_ps:
            self.horizon_ps = t
        if self.checker is not None:
            self.checker.ack(addr, t, domain="cache")

    @contextmanager
    def flush_scope(self) -> Iterator[None]:
        """While active, writes reported via :meth:`note_write` are
        recorded as cache-line flushes (``clwb``/``clflushopt``) instead
        of acknowledged nt-stores.  Lets stream drivers reuse the
        write datapath for flush timing without poisoning the
        persistence history with phantom WPQ acks."""
        self._flush_depth += 1
        try:
            yield
        finally:
            self._flush_depth -= 1

    def note_fence(self, done_ps: int) -> None:
        if done_ps > self.horizon_ps:
            self.horizon_ps = done_ps
        if self.checker is not None:
            self.checker.fence(done_ps)

    def note_lazy_absorb(self, addr: int, now: int) -> None:
        if self.checker is not None:
            self.checker.lazy_absorb(addr, now)

    def note_lazy_writeback(self, addr: int, now: int) -> None:
        if self.checker is not None:
            self.checker.lazy_writeback(addr, now)

    # -- reading --------------------------------------------------------

    def publish(self, bus, prefix: str = "faults") -> None:
        """Register pull-gauges for the injection counters on an
        instrument bus (snapshot-time only, zero hot-path cost).

        Call once per injector: collection snapshots sum per path
        across systems, so publishing the same counters onto several
        buses would multiply them in merged views.  The registry
        enforces this via :attr:`published`.
        """
        for name in self.counters:
            bus.gauge(f"{prefix}.{name}",
                      (lambda key: lambda: self.counters[key])(name))
        bus.gauge(f"{prefix}.requests", lambda: self.requests)
        self.published = True

    def summary(self) -> Dict[str, object]:
        """Self-describing injection metadata for reports/exports."""
        return {
            "plan_faults": len(self.plan),
            "seed": self.plan.seed,
            "requests": self.requests,
            "horizon_ps": self.horizon_ps,
            "power_cut_ps": self.cut_ps,
            "counters": dict(self.counters),
        }


AnyFaults = Union[FaultInjector, NullFaultInjector]

# ----------------------------------------------------------------------
# session: route registry-built systems onto one injector
# ----------------------------------------------------------------------

_ACTIVE_SESSIONS: List[FaultInjector] = []


def current() -> AnyFaults:
    """The innermost active session injector, or :data:`NULL_FAULTS`."""
    return _ACTIVE_SESSIONS[-1] if _ACTIVE_SESSIONS else NULL_FAULTS


@contextmanager
def session(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Attach ``injector`` to every system the target registry builds
    while the context is active (mirrors the flight/telemetry
    sessions)."""
    _ACTIVE_SESSIONS.append(injector)
    try:
        yield injector
    finally:
        _ACTIVE_SESSIONS.remove(injector)
