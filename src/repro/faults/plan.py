"""Fault plans: schema'd, deterministic fault schedules.

A :class:`FaultPlan` is a document (schema ``repro.faultplan/1``, the
same conventions as run manifests and bench documents) listing
:class:`FaultSpec` entries.  Each spec names a fault *kind*, a trigger
(an absolute simulated time in picoseconds, a request ordinal, or
neither — active from time zero), an optional episode duration, and
kind-specific parameters.  Plans are plain data: they round-trip
through JSON byte-for-byte and carry a seed so randomized placement
(:func:`random_plan`) is reproducible from one integer.

Fault kinds
-----------

``power_cut``
    Power fails at the trigger point.  The ADR machinery drains the iMC
    WPQ; everything above it is lost.  The simulation keeps running (a
    fault run is a what-if replay); the
    :class:`~repro.faults.persistence.PersistenceChecker` audits the
    write history against the cut time.
``media_ue``
    The 3D-XPoint cells in ``[addr_lo, addr_hi)`` (media addresses) go
    uncorrectable from the trigger onward.  Reads touching the region
    pay ``extra_ps`` of retry/ECC latency and are counted.
``media_slow``
    A transient media-latency episode: every media access during
    ``[trigger, trigger + duration_ps)`` is stretched by ``factor`` and
    padded with ``extra_ps`` (thermal throttling, refresh storms).
    Wear-leveling migrations in the window stretch the same way.
``link_degrade``
    A stuck/slow DDR-T link episode on ``channel`` (``None`` = every
    channel): request/grant hops and data beats during the window are
    stretched by ``factor`` plus ``extra_ps``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import FaultPlanError
from repro.common.rng import make_rng

#: fault-plan document version (bump on breaking key changes)
FAULTPLAN_SCHEMA = "repro.faultplan/1"

#: fault kinds understood by the injector
KINDS = ("power_cut", "media_ue", "media_slow", "link_degrade")

#: kinds that describe an episode/region rather than a point event
_EPISODE_KINDS = ("media_ue", "media_slow", "link_degrade")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Exactly one trigger applies: ``at_ps`` (absolute simulated time) or
    ``at_request`` (fires when the Nth memory request is issued).
    Episode kinds may omit both, meaning "active from time zero".
    ``duration_ps == 0`` means the episode never ends once triggered.
    """

    kind: str
    at_ps: Optional[int] = None
    at_request: Optional[int] = None
    duration_ps: int = 0
    #: media_ue: affected media-address region [addr_lo, addr_hi)
    addr_lo: int = 0
    addr_hi: int = 0
    #: flat added latency per affected access (UE retry cost, episode pad)
    extra_ps: int = 0
    #: service-time multiplier during an episode (1.0 = no stretch)
    factor: float = 1.0
    #: link_degrade: affected channel index (None = all channels)
    channel: Optional[int] = None

    def __post_init__(self) -> None:
        problems = self.problems()
        if problems:
            raise FaultPlanError(
                f"invalid {self.kind!r} fault spec: {'; '.join(problems)}")

    def problems(self) -> List[str]:
        """Validation messages (empty when the spec is well-formed)."""
        out: List[str] = []
        if self.kind not in KINDS:
            out.append(f"unknown kind {self.kind!r}; expected one of {KINDS}")
            return out
        if self.at_ps is not None and self.at_request is not None:
            out.append("at_ps and at_request are mutually exclusive")
        if self.at_ps is not None and self.at_ps < 0:
            out.append(f"at_ps must be >= 0, got {self.at_ps}")
        if self.at_request is not None and self.at_request < 1:
            out.append(f"at_request must be >= 1, got {self.at_request}")
        if self.duration_ps < 0:
            out.append(f"duration_ps must be >= 0, got {self.duration_ps}")
        if self.extra_ps < 0:
            out.append(f"extra_ps must be >= 0, got {self.extra_ps}")
        if self.factor <= 0:
            out.append(f"factor must be > 0, got {self.factor}")
        if self.kind == "power_cut":
            if self.at_ps is None and self.at_request is None:
                out.append("power_cut needs at_ps or at_request")
            if self.duration_ps:
                out.append("power_cut takes no duration_ps")
        if self.kind == "media_ue" and self.addr_hi <= self.addr_lo:
            out.append(
                f"media_ue needs addr_hi > addr_lo, got "
                f"[{self.addr_lo}, {self.addr_hi})")
        if self.kind in ("media_slow", "link_degrade") \
                and self.factor == 1.0 and self.extra_ps == 0:
            out.append(f"{self.kind} with factor 1.0 and extra_ps 0 "
                       "injects nothing")
        if self.channel is not None and self.kind != "link_degrade":
            out.append(f"channel applies only to link_degrade, "
                       f"not {self.kind}")
        if self.channel is not None and self.channel < 0:
            out.append(f"channel must be >= 0, got {self.channel}")
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe plain-dict form (all fields, stable keys)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "FaultSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C401
        unknown = sorted(set(doc) - known)
        if unknown:
            raise FaultPlanError(
                f"unknown fault spec key(s): {', '.join(unknown)}")
        if "kind" not in doc:
            raise FaultPlanError("fault spec missing 'kind'")
        return cls(**dict(doc))


@dataclass(frozen=True)
class FaultPlan:
    """A seedable schedule of :class:`FaultSpec` entries."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        # normalize lists to tuples so plans hash/compare structurally
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def empty(self) -> bool:
        return not self.specs

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": FAULTPLAN_SCHEMA,
            "seed": self.seed,
            "description": self.description,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "FaultPlan":
        problems = validate_plan(doc)
        if problems:
            raise FaultPlanError(
                f"invalid fault plan: {'; '.join(problems)}")
        specs = tuple(FaultSpec.from_dict(entry)
                      for entry in doc.get("faults", ()))
        return cls(specs=specs, seed=int(doc.get("seed", 0)),
                   description=str(doc.get("description", "")))


def validate_plan(doc: Mapping[str, Any]) -> List[str]:
    """Structural check of a plan document; empty list when valid."""
    problems: List[str] = []
    if not isinstance(doc, Mapping):
        return [f"plan must be a mapping, got {type(doc).__name__}"]
    if doc.get("schema") != FAULTPLAN_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected "
                        f"{FAULTPLAN_SCHEMA!r}")
    seed = doc.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        problems.append(f"seed must be an integer, got {seed!r}")
    faults = doc.get("faults")
    if faults is None:
        problems.append("missing key 'faults'")
        return problems
    if not isinstance(faults, Sequence) or isinstance(faults, (str, bytes)):
        problems.append("'faults' must be a list of fault specs")
        return problems
    for index, entry in enumerate(faults):
        if not isinstance(entry, Mapping):
            problems.append(f"faults[{index}] is not a mapping")
            continue
        try:
            spec = FaultSpec.from_dict(entry)
        except (FaultPlanError, TypeError, ValueError) as exc:
            problems.append(f"faults[{index}]: {exc}")
            continue
        for problem in spec.problems():
            problems.append(f"faults[{index}]: {problem}")
    return problems


def load_plan(path: str) -> FaultPlan:
    """Read and validate a plan document from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise FaultPlanError(f"cannot read fault plan {path}: {exc}") from exc
    return FaultPlan.from_dict(doc)


def save_plan(plan: FaultPlan, path: str) -> None:
    """Write a plan document as canonical indented JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(plan.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def power_cut_plan(at_ps: Optional[int] = None,
                   at_request: Optional[int] = None,
                   seed: int = 0) -> FaultPlan:
    """Single power-cut plan (the most common checker scenario)."""
    return FaultPlan(
        specs=(FaultSpec(kind="power_cut", at_ps=at_ps,
                         at_request=at_request),),
        seed=seed,
        description="single power-failure event",
    )


def random_plan(seed: int, horizon_ps: int = 1_000_000_000,
                requests: int = 10_000, nfaults: int = 3,
                media_bytes: int = 4 * 1024 * 1024 * 1024,
                nchannels: int = 1) -> FaultPlan:
    """A reproducible randomized plan for stress runs.

    All placement is drawn from one seeded stream
    (:func:`repro.common.rng.make_rng` with purpose ``fault-plan``), so
    the same seed always yields byte-identical plans.  Exactly one
    power cut is placed (in the middle 80% of the request budget); the
    remaining faults are episodes.
    """
    rng = make_rng(seed, "fault-plan")
    specs: List[FaultSpec] = [
        FaultSpec(kind="power_cut",
                  at_request=rng.randint(max(1, requests // 10),
                                         max(2, requests * 9 // 10))),
    ]
    episode_kinds = ("media_ue", "media_slow", "link_degrade")
    for _ in range(max(0, nfaults - 1)):
        kind = episode_kinds[rng.randrange(len(episode_kinds))]
        start = rng.randint(0, max(1, horizon_ps // 2))
        duration = rng.randint(horizon_ps // 100 + 1, horizon_ps // 10 + 1)
        if kind == "media_ue":
            lo = rng.randrange(0, media_bytes, 256)
            hi = min(media_bytes, lo + rng.randint(1, 64) * 4096)
            specs.append(FaultSpec(kind=kind, at_ps=start, addr_lo=lo,
                                   addr_hi=hi,
                                   extra_ps=rng.randint(1, 50) * 100_000))
        elif kind == "media_slow":
            specs.append(FaultSpec(kind=kind, at_ps=start,
                                   duration_ps=duration,
                                   factor=1.0 + rng.randint(1, 40) / 10.0))
        else:
            specs.append(FaultSpec(
                kind=kind, at_ps=start, duration_ps=duration,
                factor=1.0 + rng.randint(1, 20) / 10.0,
                channel=(rng.randrange(nchannels)
                         if nchannels > 1 and rng.random() < 0.5 else None)))
    return FaultPlan(specs=tuple(specs), seed=seed,
                     description=f"random_plan(seed={seed})")
