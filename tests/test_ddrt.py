"""DDR-T request/grant channel model."""

from dataclasses import replace

import pytest

from repro.vans import VansConfig, VansSystem
from repro.vans.ddrt import DdrtChannel


def detailed_config() -> VansConfig:
    cfg = VansConfig()
    timing = replace(cfg.dimm.timing, ddrt_detailed=True)
    return replace(cfg, dimm=replace(cfg.dimm, timing=timing))


class TestChannel:
    def test_read_transaction_flow(self):
        ch = DdrtChannel()
        cmd_done = ch.send_read_request(0)
        assert cmd_done == ch.command_ps
        data_done = ch.return_read_data(cmd_done + 100_000)
        assert data_done == cmd_done + 100_000 + ch.data_ps
        assert ch.transactions == 1

    def test_command_bus_serializes(self):
        ch = DdrtChannel()
        a = ch.send_read_request(0)
        b = ch.send_read_request(0)
        assert b == a + ch.command_ps

    def test_credits_backpressure(self):
        ch = DdrtChannel(command_slots=2)
        ch.send_read_request(0)
        ch.return_read_data(1_000_000)
        ch.send_read_request(0)
        ch.return_read_data(2_000_000)
        # third transaction must wait for the first credit to return
        third = ch.send_read_request(0)
        assert third >= 1_000_000

    def test_reads_and_writes_share_data_bus(self):
        ch = DdrtChannel()
        w = ch.send_write(0)
        r_cmd = ch.send_read_request(0)
        r_done = ch.return_read_data(r_cmd)
        assert r_done >= w + ch.data_ps  # data beats serialized


class TestDetailedMode:
    def test_off_by_default(self):
        assert VansSystem().imc.ddrt is None

    def test_detailed_system_works(self):
        system = VansSystem(detailed_config())
        assert system.imc.ddrt is not None
        now = system.read(0, 0)
        now = system.write(64, now)
        system.fence(now)
        counters = system.counters()
        assert counters["ddrt.read_txns"] == 1
        assert counters["ddrt.write_txns"] == 1

    def test_detailed_latency_close_to_calibrated(self):
        """The explicit protocol should land near the calibrated fixed
        hops for an isolated access (they model the same thing)."""
        fixed = VansSystem().read(0, 0)
        detailed = VansSystem(detailed_config()).read(0, 0)
        assert detailed == pytest.approx(fixed, rel=0.15)

    def test_detailed_mode_shows_credit_contention(self):
        """A burst wider than the credit pool queues on the channel —
        the contention the fixed-constant model cannot express."""
        system = VansSystem(detailed_config())
        # saturate: issue many independent reads at t=0 via the RPQ
        last = 0
        for i in range(48):
            last = max(last, system.imc.read(i * 4096, 0))
        credits = system.imc.ddrt[0].credits
        assert credits.total_wait > 0
