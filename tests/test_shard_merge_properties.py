"""Property tests: the shard merge algebra is associative and
order-independent, and sharded execution equals serial.

These are the laws the bit-identity claim rests on: however a stream is
partitioned — any interleave geometry, any shard count, any report
order — folding the per-shard payloads must land on the same bytes as
the serial (one-shard) run.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.executor import identity_view, run_shard_stream
from repro.shard.merge import (
    canonical_snapshot,
    completion_checksum,
    empty_timeline,
    merge_checksums,
    merge_counts,
    merge_snapshots,
    merge_timelines,
    sort_timeline,
)
from repro.shard.plan import ShardPlan
from repro.shard.stream import compile_epochs, partition, synthetic_stream
from repro.vans.interleave import Interleaver

# -- snapshot merge ---------------------------------------------------------

counter_keys = st.sampled_from(
    ["imc.reads", "imc.writes", "dimm0.media.reads", "dimm1.media.reads",
     "system.lat.count", "system.lat.sum", "media.bytes_written"])

snapshots = st.dictionaries(
    counter_keys, st.integers(min_value=0, max_value=10 ** 6), max_size=7)


def _hist_snapshot(draw_count, lo, hi):
    """A canonical histogram block (count-guarded min/max)."""
    snap = {"lat.count": draw_count, "lat.sum": draw_count * 100}
    snap["lat.min"] = lo if draw_count else 0
    snap["lat.max"] = hi if draw_count else 0
    return snap


hist_snapshots = st.builds(
    _hist_snapshot,
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=1, max_value=100),
    st.integers(min_value=100, max_value=1000))


@settings(max_examples=150, deadline=None)
@given(st.lists(snapshots, min_size=1, max_size=5))
def test_snapshot_merge_is_order_independent(snaps):
    forward = merge_snapshots(snaps)
    assert merge_snapshots(list(reversed(snaps))) == forward
    # associativity: fold pairwise left vs merging flat
    folded = snaps[0]
    for snap in snaps[1:]:
        folded = merge_snapshots([folded, snap])
    assert folded == forward


@settings(max_examples=150, deadline=None)
@given(st.lists(hist_snapshots, min_size=1, max_size=5))
def test_histogram_min_max_merge_is_count_guarded(snaps):
    merged = merge_snapshots(snaps)
    recorded = [s for s in snaps if s["lat.count"]]
    if recorded:
        assert merged["lat.min"] == min(s["lat.min"] for s in recorded)
        assert merged["lat.max"] == max(s["lat.max"] for s in recorded)
    else:
        assert merged["lat.min"] == merged["lat.max"] == 0
    assert merged["lat.count"] == sum(s["lat.count"] for s in snaps)


@settings(max_examples=100, deadline=None)
@given(snapshots)
def test_single_snapshot_merge_is_identity(snap):
    canon = canonical_snapshot(snap)
    assert merge_snapshots([canon]) == canon


@settings(max_examples=100, deadline=None)
@given(st.lists(st.lists(st.tuples(
    st.integers(min_value=0, max_value=10 ** 6),
    st.integers(min_value=0, max_value=10 ** 9)), max_size=20),
    min_size=1, max_size=4))
def test_checksum_merge_independent_of_partitioning(parts):
    flat = [pair for part in parts for pair in part]
    assert merge_checksums(completion_checksum(p) for p in parts) \
        == completion_checksum(flat)
    assert merge_checksums(
        completion_checksum(p) for p in reversed(parts)) \
        == completion_checksum(flat)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.dictionaries(
    st.sampled_from(["read", "write", "write_nt"]),
    st.integers(min_value=0, max_value=1000), max_size=3),
    min_size=1, max_size=5))
def test_count_merge_commutes(parts):
    assert merge_counts(parts) == merge_counts(list(reversed(parts)))


timelines = st.builds(
    lambda reqs: {"interval_ps": 1000,
                  "series": {"requests": {str(b): n for b, n in reqs},
                             "busy_ps": {str(b): n * 7 for b, n in reqs}}},
    st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                       st.integers(min_value=1, max_value=100)),
             max_size=10, unique_by=lambda t: t[0]))


@settings(max_examples=150, deadline=None)
@given(st.lists(timelines, min_size=1, max_size=5))
def test_timeline_merge_is_order_independent(parts):
    forward = sort_timeline(merge_timelines(parts))
    backward = sort_timeline(merge_timelines(list(reversed(parts))))
    assert json.dumps(forward, sort_keys=True) \
        == json.dumps(backward, sort_keys=True)
    folded = empty_timeline(1000)
    for part in parts:
        folded = merge_timelines([folded, part])
    assert sort_timeline(folded) == forward


# -- partitioning is exact for random geometries ----------------------------

@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=8),
       st.booleans(),
       st.sampled_from([1, 2, 4, 8]),
       st.integers(min_value=0, max_value=99))
def test_partition_is_a_bijection_for_random_geometry(ndimms, interleaved,
                                                      shards, seed):
    inter = Interleaver(ndimms=ndimms, granularity=4096,
                        interleaved=interleaved)
    plan = ShardPlan.for_target(ndimms, shards)
    epochs = compile_epochs(
        synthetic_stream("rand", 96, fence_every=32, seed=seed))
    subs = partition(epochs, inter, plan)
    seen = sorted(r.index for shard in subs for ep in shard for r in ep)
    assert seen == list(range(96))
    for shard_id, shard in enumerate(subs):
        for ep in shard:
            for r in ep:
                assert plan.shard_of(inter.map(r.addr)[0]) == shard_id


# -- end to end: sharded == serial over random shard counts -----------------

@settings(max_examples=6, deadline=None)
@given(st.sampled_from([2, 4]),
       st.sampled_from(["seq", "burst", "rand"]),
       st.integers(min_value=0, max_value=3))
def test_sharded_run_equals_serial(shards, kind, seed):
    ops = synthetic_stream(kind, 600, fence_every=200, write_ratio=0.5,
                           seed=seed)
    overrides = {"ndimms": 4, "interleaved": True}
    serial = run_shard_stream("vans", ops, shards=1, overrides=overrides,
                              fork=False)
    sharded = run_shard_stream("vans", ops, shards=shards,
                               overrides=overrides, fork=False)
    assert json.dumps(identity_view(sharded), sort_keys=True) \
        == json.dumps(identity_view(serial), sort_keys=True)
