"""End-to-end daemon tests: real sockets, real workers, many sessions.

The acceptance bar for the serve engine: sustain at least 8 concurrent
client sessions, schedule them fairly (every tenant's first job
dispatched before any tenant's second), settle everything, and shut
down without leaving a worker process behind.
"""

from __future__ import annotations

import threading

import pytest

from repro.common.errors import QuotaExceededError
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import running_daemon

STREAM_OPS = [{"op": "read", "addr": 0, "count": 2000, "stride": 64},
              {"op": "write", "addr": 0, "count": 1000, "stride": 64},
              {"op": "fence"}]


class TestConcurrentSessions:
    def test_eight_sessions_fair_completion_clean_shutdown(self):
        """≥8 concurrent tenant sessions, round-robin dispatch, and a
        shutdown that orphans nothing."""
        ntenants = 8
        with running_daemon(workers=1, warm_cache=4, max_active=1,
                            max_queued=4) as daemon:
            clients = [ServeClient("127.0.0.1", daemon.port,
                                   tenant=f"t{i}")
                       for i in range(ntenants)]
            try:
                assert len({c.session for c in clients}) == ntenants
                # every tenant submits two jobs up front; with one
                # worker the scheduler must interleave the tenants
                submitted = [(c, [c.submit_stream("vans", STREAM_OPS),
                                  c.submit_stream("vans", STREAM_OPS)])
                             for c in clients]
                replies = []
                errors = []

                def collect(client, ids):
                    try:
                        for request_id in ids:
                            replies.append(client.wait(request_id))
                    except Exception as exc:   # pragma: no cover
                        errors.append(exc)

                threads = [threading.Thread(target=collect, args=pair)
                           for pair in submitted]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=120)
                assert not errors
                assert len(replies) == 2 * ntenants
                assert all(r["type"] == "result" and r["status"] == "ok"
                           for r in replies)
                # fairness: each tenant's first job ran before any
                # tenant's second job
                log = list(daemon.scheduler.dispatch_log)
                assert set(log[:ntenants]) == \
                    {f"t{i}" for i in range(ntenants)}
                assert daemon.scheduler.stats["completed"] == 2 * ntenants
            finally:
                for c in clients:
                    c.close()
            pool = daemon.pool
        assert pool.processes_alive() == 0
        assert daemon.scheduler.active() == 0
        assert daemon.scheduler.queued() == 0

    def test_results_carry_session_identity(self):
        with running_daemon(workers=1) as daemon:
            with ServeClient("127.0.0.1", daemon.port,
                             tenant="ident") as client:
                reply = client.run_stream("vans", STREAM_OPS)
                stream = reply["stream"]
                assert stream["session"] == {"session": client.session,
                                             "tenant": "ident"}
                manifest = reply["manifest"]
                assert manifest["session"]["session"] == client.session
                assert manifest["session"]["tenant"] == "ident"


class TestQuotaOverWire:
    def test_over_quota_submit_rejected_429(self):
        busy = [{"op": "read", "count": 25_000, "stride": 64}]
        with running_daemon(workers=1, max_active=1,
                            max_queued=1) as daemon:
            with ServeClient("127.0.0.1", daemon.port,
                             tenant="greedy") as client:
                first = client.submit_stream("vans", busy)
                second = client.submit_stream("vans", busy)
                third = client.submit_stream("vans", busy)
                rejection = client.wait(third, raise_on_error=False)
                assert rejection["type"] == "rejected"
                assert rejection["code"] == 429
                assert client.wait(first)["status"] == "ok"
                assert client.wait(second)["status"] == "ok"
            del daemon

    def test_rejection_raises_quota_error_by_default(self):
        busy = [{"op": "read", "count": 25_000, "stride": 64}]
        with running_daemon(workers=1, max_active=1,
                            max_queued=1) as daemon:
            with ServeClient("127.0.0.1", daemon.port,
                             tenant="greedy") as client:
                first = client.submit_stream("vans", busy)
                second = client.submit_stream("vans", busy)
                third = client.submit_stream("vans", busy)
                with pytest.raises(QuotaExceededError):
                    client.wait(third)
                client.wait(first)
                client.wait(second)
            del daemon


class TestErrorsOverWire:
    def test_unknown_experiment_suggestion_reaches_client(self):
        with running_daemon(workers=1) as daemon:
            with ServeClient("127.0.0.1", daemon.port) as client:
                with pytest.raises(ServeError) as exc_info:
                    client.run_experiment("fig99")
                assert exc_info.value.code == 2
                assert "did you mean" in str(exc_info.value)

    def test_override_typo_rejected_with_suggestion(self):
        with running_daemon(workers=1) as daemon:
            with ServeClient("127.0.0.1", daemon.port) as client:
                with pytest.raises(ServeError) as exc_info:
                    client.run_stream("vans", STREAM_OPS,
                                      overrides={"lazy_cahe": True})
                assert exc_info.value.code == 2
                message = str(exc_info.value)
                assert "lazy_cahe" in message
                assert "lazy_cache" in message

    def test_unknown_target_suggestion(self):
        with running_daemon(workers=1) as daemon:
            with ServeClient("127.0.0.1", daemon.port) as client:
                with pytest.raises(ServeError) as exc_info:
                    client.run_stream("van", STREAM_OPS)
                assert exc_info.value.code == 2
                assert "did you mean" in str(exc_info.value)


class TestIntrospection:
    def test_ping_stats_experiments_targets(self):
        with running_daemon(workers=1) as daemon:
            with ServeClient("127.0.0.1", daemon.port) as client:
                assert client.ping() is True
                stats = client.stats()
                assert stats["sessions"] == 1
                assert stats["pool"]["workers"] == 1
                experiment_ids = {e["id"] for e in client.experiments()}
                assert "fig1" in experiment_ids
                target_names = {t["name"] for t in client.targets()}
                assert "vans" in target_names

    def test_welcome_reports_protocol_and_limits(self):
        with running_daemon(workers=1, max_active=3,
                            max_queued=5) as daemon:
            with ServeClient("127.0.0.1", daemon.port) as client:
                assert client.welcome["protocol"] == "repro.serve/1"
                assert client.welcome["limits"]["max_active"] == 3
                assert client.welcome["limits"]["max_queued"] == 5
