"""Discrete-event kernel."""

import pytest

from repro.common.errors import SimulationError
from repro.engine.event import Engine


def test_events_fire_in_time_order():
    engine = Engine()
    order = []
    engine.schedule_at(30, order.append, "c")
    engine.schedule_at(10, order.append, "a")
    engine.schedule_at(20, order.append, "b")
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 30


def test_fifo_among_equal_times():
    engine = Engine()
    order = []
    for tag in "abc":
        engine.schedule_at(5, order.append, tag)
    engine.run()
    assert order == ["a", "b", "c"]


def test_relative_schedule():
    engine = Engine()
    engine.advance(100)
    fired = []
    engine.schedule(50, fired.append, 1)
    engine.run()
    assert engine.now == 150
    assert fired == [1]


def test_cannot_schedule_in_past():
    engine = Engine()
    engine.advance(100)
    with pytest.raises(SimulationError):
        engine.schedule_at(50, lambda: None)


def test_cancel_event():
    engine = Engine()
    fired = []
    handle = engine.schedule_at(10, fired.append, "x")
    handle.cancel()
    engine.run()
    assert fired == []


def test_run_until_stops_clock():
    engine = Engine()
    fired = []
    engine.schedule_at(10, fired.append, 1)
    engine.schedule_at(100, fired.append, 2)
    engine.run(until=50)
    assert fired == [1]
    assert engine.now == 50
    engine.run()
    assert fired == [1, 2]


def test_events_can_schedule_events():
    engine = Engine()
    log = []

    def chain(depth):
        log.append(depth)
        if depth < 3:
            engine.schedule(10, chain, depth + 1)

    engine.schedule_at(0, chain, 0)
    engine.run()
    assert log == [0, 1, 2, 3]
    assert engine.now == 30


def test_step_fires_single_event():
    engine = Engine()
    fired = []
    engine.schedule_at(5, fired.append, "a")
    engine.schedule_at(6, fired.append, "b")
    engine.step()
    assert fired == ["a"]
    assert engine.pending() == 1


def test_advance_rejects_backwards():
    engine = Engine()
    engine.advance(10)
    with pytest.raises(SimulationError):
        engine.advance(5)


def test_processed_events_counter():
    engine = Engine()
    for t in range(5):
        engine.schedule_at(t, lambda: None)
    engine.run()
    assert engine.processed_events == 5
