"""Crash-tolerant campaign scheduler: hangs, crashes, retries, exits."""

import json
import time

import pytest

from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.runner import (
    EXIT_ALL_FAILED,
    EXIT_OK,
    EXIT_PARTIAL,
    REGISTRY,
    _run_parallel,
    _spec,
    campaign_exit_code,
    run_all,
)


def _run_hang(scale):
    time.sleep(30)
    return ExperimentResult(experiment="hang", title="never returns")


def _run_boom(scale):
    raise RuntimeError("deliberate kaboom")


def _run_fine(scale):
    return ExperimentResult(experiment="fine", title="trivially ok",
                            metrics={"answer": 42.0})


@pytest.fixture
def synthetic_specs():
    """Register hang/boom/fine dummies; fork workers inherit them."""
    specs = {
        "hang": _spec("hang", _run_hang, "test", "sleeps forever", 0.1, []),
        "boom": _spec("boom", _run_boom, "test", "always raises", 0.1, []),
        "fine": _spec("fine", _run_fine, "test", "always passes", 0.1, []),
    }
    REGISTRY.update(specs)
    try:
        yield list(specs)
    finally:
        for exp_id in specs:
            REGISTRY.pop(exp_id, None)


def _statuses(by_id):
    return {exp_id: results[0].status
            for exp_id, (results, _, _) in by_id.items()}


class TestWatchdog:
    def test_hung_experiment_times_out_others_complete(self, synthetic_specs):
        by_id = _run_parallel(["fine", "hang", "boom"], Scale.SMOKE, 42,
                              workers=3, timeout_s=2.0)
        assert _statuses(by_id) == {"fine": "ok", "hang": "timeout",
                                    "boom": "failed"}
        hang = by_id["hang"][0][0]
        assert "--timeout 2.0s" in hang.error
        assert "worker terminated" in hang.error

    def test_remote_traceback_captured(self, synthetic_specs):
        by_id = _run_parallel(["boom"], Scale.SMOKE, 42, workers=1)
        result = by_id["boom"][0][0]
        assert result.status == "failed"
        assert "RuntimeError: deliberate kaboom" in result.error
        assert "_run_boom" in result.error      # real remote stack frames

    def test_ok_results_record_one_attempt(self, synthetic_specs):
        by_id = _run_parallel(["fine"], Scale.SMOKE, 42, workers=1)
        result = by_id["fine"][0][0]
        assert result.status == "ok"
        assert result.attempts == 1
        assert result.metrics["answer"] == 42.0


class TestRetries:
    def test_persistent_failure_is_quarantined(self, synthetic_specs):
        by_id = _run_parallel(["boom"], Scale.SMOKE, 42, workers=1,
                              retries=2, backoff_s=0.01)
        result = by_id["boom"][0][0]
        assert result.status == "quarantined"
        assert result.attempts == 3
        assert "deliberate kaboom" in result.error

    def test_no_retries_means_plain_failed_status(self, synthetic_specs):
        by_id = _run_parallel(["boom"], Scale.SMOKE, 42, workers=1,
                              retries=0)
        assert by_id["boom"][0][0].status == "failed"


class TestRunAllDegradation:
    def test_serial_run_survives_a_raising_experiment(self, synthetic_specs):
        results = run_all(Scale.SMOKE, ids=["fine", "boom"])
        assert [r.status for r in results] == ["ok", "failed"]
        assert "deliberate kaboom" in results[1].error

    def test_timeout_forces_process_isolation_even_serial(
            self, synthetic_specs):
        results = run_all(Scale.SMOKE, ids=["fine", "hang"],
                          timeout_s=2.0)
        assert [r.status for r in results] == ["ok", "timeout"]

    def test_results_keep_registry_order(self, synthetic_specs):
        results = run_all(Scale.SMOKE, ids=["boom", "fine"], workers=2)
        assert [r.experiment for r in results] == ["boom", "fine"]


class TestExitCodes:
    def _result(self, status):
        r = ExperimentResult(experiment="x", title="x")
        r.status = status
        return r

    def test_all_ok_is_zero(self):
        assert campaign_exit_code([self._result("ok")]) == EXIT_OK

    def test_partial_is_four(self):
        assert campaign_exit_code(
            [self._result("ok"), self._result("timeout")]) == EXIT_PARTIAL

    def test_total_failure_is_one(self):
        assert campaign_exit_code(
            [self._result("failed"), self._result("quarantined")]) == \
            EXIT_ALL_FAILED
        assert campaign_exit_code([]) == EXIT_ALL_FAILED


class TestBenchPartial:
    """A crashing suite member yields a partial artifact, not nothing."""

    @pytest.fixture
    def crashing_tables(self, monkeypatch):
        import repro.experiments.runner as runner
        real = runner.run_experiment

        def flaky(exp_id, *args, **kwargs):
            if exp_id == "tables":
                raise RuntimeError("deliberate bench kaboom")
            return real(exp_id, *args, **kwargs)

        monkeypatch.setattr(runner, "run_experiment", flaky)

    def test_run_suite_marks_partial_and_keeps_schema(self, crashing_tables):
        from repro.telemetry.bench import run_suite, validate_bench
        doc = run_suite("smoke", Scale.SMOKE)
        assert doc["completed"] is False
        entry = doc["experiments"]["tables"]
        assert "deliberate bench kaboom" in entry["error"]
        assert entry["requests"] == 0 and entry["metrics"] == {}
        assert doc["experiments"]["fig1"]["requests"] > 0
        assert validate_bench(doc) == []

    def test_documents_without_completed_stay_valid(self):
        from repro.telemetry.bench import run_suite, validate_bench
        doc = run_suite("smoke", Scale.SMOKE)
        assert doc["completed"] is True
        del doc["completed"]     # documents from before the flag existed
        assert validate_bench(doc) == []

    def test_crashed_entries_never_gate_as_regressions(self, crashing_tables):
        from repro.telemetry.bench import diff_bench, run_suite
        partial = run_suite("smoke", Scale.SMOKE)
        baseline = {"experiments": {"tables": {
            "requests": 1000, "wall_s": 1.0, "requests_per_s": 1000.0,
            "metrics": {"tables.rows": 12.0}}}}
        deltas = diff_bench(baseline, partial)
        assert deltas["metrics"] == [] and deltas["perf"] == []

    def test_bench_cli_writes_partial_and_exits_4(self, crashing_tables,
                                                  tmp_path, capsys):
        from repro.tools.bench_cli import EXIT_PARTIAL as BENCH_PARTIAL
        from repro.tools.bench_cli import main
        code = main(["--suite", "smoke", "--out", str(tmp_path),
                     "--date", "2026-08-06"])
        assert code == BENCH_PARTIAL == 4
        doc = json.loads((tmp_path / "BENCH_2026-08-06.json").read_text())
        assert doc["completed"] is False
        err = capsys.readouterr().err
        assert "PARTIAL RUN" in err and "tables" in err
