"""Serve observability: the metrics registry, Prometheus exposition
(render + strict parse), the HTTP listener, structured logs, and the
end-to-end progress/metrics path through a live daemon.
"""

from __future__ import annotations

import io
import json
import urllib.request

import pytest

from repro.serve.log import ServeLog
from repro.serve.metrics import (MetricsHTTPServer, ServeMetrics,
                                 parse_exposition, render_prometheus)

SAMPLE_DOC = {
    "uptime_s": 12.5,
    "sessions": 2,
    "counters": {"connections_total": 3, "protocol_errors_total": 1,
                 "progress_frames_total": 40, "metrics_scrapes_total": 5},
    "scheduler": {"submitted": 9, "dispatched": 8, "completed": 7,
                  "rejected": 1, "dispatch_log_total": 8, "queued": 1,
                  "active": 1, "queued_by_tenant": {"a": 1},
                  "active_by_tenant": {"b": 1},
                  "dispatched_by_tenant": {"a": 3, "b": 5}},
    "pool": {"workers": 2, "idle": 1, "busy": 1, "alive": 2,
             "spawned": 2, "respawned": 0, "completed": 7, "errors": 0,
             "timeouts": 0, "rejects": 1,
             "job_ms": {"count": 7, "sum": 2100, "p50": 300, "p99": 400},
             "warm_cache": {"hits": 6, "misses": 2, "parked": 2,
                            "dropped": 0, "ineligible": 0, "size": 2,
                            "limit": 8}},
    "jobs": {"j-1": {"tenant": "a"}, "j-2": {"tenant": "b"}},
}


class TestExposition:
    def test_render_parse_round_trip(self):
        samples = parse_exposition(render_prometheus(SAMPLE_DOC))
        assert samples["repro_serve_uptime_seconds"] == 12.5
        assert samples["repro_serve_sessions"] == 2
        assert samples['repro_serve_jobs_total{outcome="completed"}'] == 7
        assert samples[
            'repro_serve_scheduler_jobs_total{event="rejected"}'] == 1
        assert samples[
            'repro_serve_tenant_dispatched_total{tenant="b"}'] == 5
        assert samples[
            'repro_serve_warm_cache_events_total{event="hits"}'] == 6
        assert samples["repro_serve_warm_cache_hit_ratio"] == \
            pytest.approx(0.75)
        assert samples["repro_serve_jobs_in_flight"] == 2
        # summary: quantiles in seconds, count preserved
        assert samples[
            'repro_serve_job_wall_seconds{quantile="0.5"}'] == \
            pytest.approx(0.3)
        assert samples["repro_serve_job_wall_seconds_count"] == 7

    def test_exposition_declares_types_before_samples(self):
        text = render_prometheus(SAMPLE_DOC)
        seen_types = set()
        for line in text.splitlines():
            if line.startswith("# TYPE"):
                seen_types.add(line.split()[2])
            elif line and not line.startswith("#"):
                name = line.split("{")[0].split()[0]
                family = name
                for suffix in ("_sum", "_count", "_bucket"):
                    if name.endswith(suffix):
                        family = name[: -len(suffix)]
                assert name in seen_types or family in seen_types

    def test_label_values_are_escaped(self):
        doc = {"uptime_s": 1, "counters": {},
               "scheduler": {"submitted": 0, "dispatched": 0,
                             "completed": 0, "rejected": 0,
                             "dispatch_log_total": 0, "queued": 0,
                             "active": 0,
                             "dispatched_by_tenant": {'we"ird\\t': 4}}}
        samples = parse_exposition(render_prometheus(doc))
        assert any(value == 4 for key, value in samples.items()
                   if key.startswith("repro_serve_tenant_dispatched"))

    @pytest.mark.parametrize("bad,reason", [
        ("orphan_metric 1\n", "no preceding TYPE"),
        ("# TYPE m gauge\nm 1\nm 1\n", "duplicate sample"),
        ("# TYPE m gauge\n# TYPE m gauge\nm 1\n", "duplicate TYPE"),
        ("# TYPE m wibble\n", "bad TYPE"),
        ("# TYPE m gauge\nm not-a-number\n", "non-numeric"),
        ("# TYPE 0bad gauge\n", "illegal metric name"),
    ])
    def test_parse_rejects_malformed(self, bad, reason):
        with pytest.raises(ValueError):
            parse_exposition(bad)

    def test_parse_accepts_empty_and_blank_lines(self):
        assert parse_exposition("") == {}
        assert parse_exposition("\n\n# HELP x y\n") == {}


class TestServeMetrics:
    def test_counters_and_collect(self):
        class FakeSched:
            def snapshot(self):
                return {"submitted": 1}

        class FakePool:
            def snapshot(self):
                return {"workers": 1}

        metrics = ServeMetrics(scheduler=FakeSched(), pool=FakePool(),
                               sessions=[1, 2])
        metrics.inc("connections_total")
        metrics.inc("connections_total", by=2)
        doc = metrics.collect()
        assert doc["counters"]["connections_total"] == 3
        assert doc["sessions"] == 2
        assert doc["scheduler"] == {"submitted": 1}
        assert doc["pool"] == {"workers": 1}
        assert doc["uptime_s"] >= 0
        # renders and parses even with minimal subsystem snapshots
        assert parse_exposition(metrics.prometheus())

    def test_http_listener(self):
        server = MetricsHTTPServer(
            lambda: render_prometheus(SAMPLE_DOC), port=0)
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=10) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/plain")
                body = response.read().decode("utf-8")
            assert parse_exposition(body)["repro_serve_sessions"] == 2
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=10)
        finally:
            server.close()


class TestServeLog:
    def test_json_lines_carry_correlation_fields(self):
        buffer = io.StringIO()
        log = ServeLog(level="debug", json_lines=True, stream=buffer)
        log.info("job.accepted", session="s-1", tenant="a", job="j-9",
                 request_id=4, none_dropped=None)
        doc = json.loads(buffer.getvalue())
        assert doc["event"] == "job.accepted"
        assert doc["job"] == "j-9" and doc["tenant"] == "a"
        assert "none_dropped" not in doc

    def test_level_filtering(self):
        buffer = io.StringIO()
        log = ServeLog(level="warning", stream=buffer)
        log.debug("quiet")
        log.info("quiet")
        log.warning("loud", job="j-1")
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert "loud" in lines[0] and "job=j-1" in lines[0]

    def test_off_is_silent_and_never_raises(self):
        class Closed:
            def write(self, text):
                raise ValueError("closed")

            def flush(self):
                raise ValueError("closed")

        log = ServeLog(level="info", stream=Closed())
        log.error("still fine")       # swallowed
        silent = ServeLog(level="off", stream=Closed())
        silent.error("dropped before the stream is touched")


class TestDaemonEndToEnd:
    OPS = [{"op": "read", "addr": 0, "count": 2000, "stride": 64}]

    def test_progress_metrics_and_logs_through_live_daemon(self):
        from repro.experiments.exec import run_stream
        from repro.serve.client import ServeClient
        from repro.serve.server import running_daemon

        log_buffer = io.StringIO()
        log = ServeLog(level="debug", json_lines=True, stream=log_buffer)
        frames = []
        with running_daemon(workers=1, warm_cache=4, log=log) as daemon:
            with ServeClient("127.0.0.1", daemon.port,
                             tenant="obs") as client:
                reply = client.run_stream(
                    "vans", self.OPS,
                    progress={"interval_ps": 5_000_000,
                              "min_wall_s": 0.0},
                    on_progress=frames.append)
                metrics_doc = client.metrics()
                exposition = client.metrics(format="prometheus")

        # ≥2 frames (phase + terminal), monotone, carrying identity
        assert len(frames) >= 2
        sims = [f["sim_time_ns"] for f in frames]
        assert sims == sorted(sims)
        assert all(f["type"] == "progress" and f["job"] == reply["job"]
                   for f in frames)
        assert frames[-1]["worker_pid"] == reply["worker_pid"]

        # terminal payload byte-identical to the in-process runner
        # (session identity is served-only by design, like wall_s)
        served = {k: v for k, v in reply["stream"].items()
                  if k != "session"}
        batch = {k: v for k, v in run_stream("vans", self.OPS).items()
                 if k != "session"}
        assert served == batch

        # metrics saw the frames and the settled job
        counters = metrics_doc["counters"]
        assert counters["progress_frames_total"] >= len(frames)
        assert counters["connections_total"] >= 1
        assert metrics_doc["pool"]["completed"] >= 1
        samples = parse_exposition(exposition)
        assert samples["repro_serve_progress_frames_total"] >= \
            len(frames)
        assert samples['repro_serve_jobs_total{outcome="completed"}'] \
            >= 1

        # structured log reconstructs the job's life by correlation id
        events = [json.loads(line) for line
                  in log_buffer.getvalue().splitlines()]
        job_events = [e for e in events
                      if e.get("job") == reply["job"]]
        kinds = [e["event"] for e in job_events]
        assert "job.accepted" in kinds
        assert "job.settled" in kinds
        assert any(k == "job.progress" for k in kinds)
        assert all(e["tenant"] == "obs" for e in job_events)

    def test_watch_broadcasts_progress_to_observers(self):
        from repro.serve.client import ServeClient
        from repro.serve.server import running_daemon

        with running_daemon(workers=1, warm_cache=4) as daemon:
            with ServeClient("127.0.0.1", daemon.port,
                             tenant="watcher") as observer, \
                    ServeClient("127.0.0.1", daemon.port,
                                tenant="runner") as runner:
                request_id = next(observer._ids)
                observer._send({"type": "watch", "id": request_id})
                ack = observer._wait_for(request_id)
                assert ack["type"] == "watching"

                runner.run_stream(
                    "vans", self.OPS,
                    progress={"interval_ps": 5_000_000,
                              "min_wall_s": 0.0},
                    on_progress=lambda f: None)

                # broadcast frames carry the runner's identity and no
                # request id (they are not addressed to the observer)
                seen = observer._read_message()
                assert seen["type"] == "progress"
                assert "id" not in seen
                assert seen["tenant"] == "runner"

    def test_unknown_verb_counts_protocol_error(self):
        from repro.serve.client import ServeClient
        from repro.serve.server import running_daemon

        with running_daemon(workers=1) as daemon:
            with ServeClient("127.0.0.1", daemon.port) as client:
                request_id = next(client._ids)
                client._send({"type": "frobnicate", "id": request_id})
                reply = client._wait_for(request_id,
                                         raise_on_error=False)
                assert reply["type"] == "error"
                doc = client.metrics()
        assert doc["counters"]["protocol_errors_total"] >= 1
