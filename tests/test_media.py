"""3D-XPoint media model."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import MIB, NS
from repro.media.xpoint import XPointConfig, XPointMedia


def make(**kwargs):
    defaults = dict(capacity_bytes=64 * MIB)
    defaults.update(kwargs)
    return XPointMedia(XPointConfig(**defaults))


def test_read_write_asymmetry():
    media = make()
    read_done = media.access(0, False, 0)
    media = make()
    write_done = media.access(0, True, 0)
    assert write_done > read_done


def test_partition_parallelism():
    media = make()
    a = media.access(0, False, 0)
    b = media.access(256, False, 0)  # adjacent 256B unit -> next partition
    assert a == b


def test_same_partition_serializes():
    media = make()
    first = media.access(0, False, 0)
    second = media.access(0, False, 0)
    assert second == first + media.config.read_ps


def test_unaligned_access_rounds_down():
    media = make()
    media.access(100, False, 0)
    media2 = make()
    media2.access(0, False, 0)
    assert media.banks.banks[0].busy_until == media2.banks.banks[0].busy_until


def test_block_access_spans_partitions():
    media = make()
    done = media.access_block(0, 4096, False, 0)
    # 16 units over 16 partitions run fully parallel
    assert done == media.config.read_ps
    assert media.reads == 16


def test_byte_counters():
    media = make()
    media.access(0, True, 0)
    media.access(256, False, 0)
    stats = media.stats.snapshot()
    assert stats["media.bytes_written"] == 256
    assert stats["media.bytes_read"] == 256


def test_capacity_wrap():
    media = make(capacity_bytes=1 * MIB)
    assert media.access(3 * MIB, False, 0) > 0


def test_invalid_configs():
    with pytest.raises(ConfigError):
        XPointConfig(granularity=100)
    with pytest.raises(ConfigError):
        XPointConfig(npartitions=5)
    with pytest.raises(ConfigError):
        XPointConfig(capacity_bytes=1000)


def test_reset_stats():
    media = make()
    media.access(0, False, 0)
    media.reset_stats()
    assert media.reads == 0
    assert media.banks.banks[0].busy_until == 0
