"""Energy accounting."""

import pytest

from repro.energy import EnergyCosts, energy_of
from repro.vans import VansConfig, VansSystem


def run_reads(system, n=50):
    now = 0
    for i in range(n):
        now = system.read(i * 4096, now)
    return now


def run_writes(system, n=50):
    now = 0
    for i in range(n):
        now = system.write(i * 4096, now)
    return system.fence(now)


def test_idle_system_zero_energy():
    assert energy_of(VansSystem()).total_j == 0.0


def test_reads_cost_media_read_energy():
    system = VansSystem()
    run_reads(system)
    report = energy_of(system)
    assert report.by_component["media-read"] > 0
    assert report.by_component["media-write"] == 0


def test_sequential_writes_dominated_by_media_write():
    """Sequential stores combine into full 256B ops: pure write traffic."""
    system = VansSystem()
    now = 0
    for i in range(200):
        now = system.write(i * 64, now)
    system.fence(now)
    report = energy_of(system)
    assert report.by_component["media-write"] > \
        report.by_component["media-read"]


def test_random_partial_writes_pay_merge_read_energy():
    """Scattered 64B stores read-modify-write: the 4KB merge fills make
    read energy a first-order cost of small random writes."""
    system = VansSystem()
    run_writes(system)
    report = energy_of(system)
    assert report.by_component["media-read"] > 0


def test_write_energy_exceeds_read_energy_per_op():
    reads = VansSystem()
    run_reads(reads)
    writes = VansSystem()
    run_writes(writes)
    assert energy_of(writes).total_j > energy_of(reads).total_j


def test_migration_energy_accounted(fast_wear_config):
    system = VansSystem(fast_wear_config)
    now = 0
    for _ in range(fast_wear_config.dimm.wear.migrate_threshold + 5):
        now = system.write(0, now)
        now = system.fence(now)
    report = energy_of(system)
    assert report.by_component["wear-migration"] > 0


def test_lazy_cache_saves_media_write_energy(fast_wear_config):
    def energy(lazy):
        system = VansSystem(fast_wear_config.with_lazy_cache(lazy))
        now = 0
        for _ in range(fast_wear_config.dimm.wear.migrate_threshold * 3):
            now = system.write(0, now)
            now = system.fence(now)
        return energy_of(system).by_component["media-write"]

    assert energy(True) < energy(False)


def test_custom_costs():
    system = VansSystem()
    run_reads(system, 10)
    expensive = energy_of(system, EnergyCosts(media_read_pj=1e6))
    cheap = energy_of(system, EnergyCosts(media_read_pj=1.0))
    assert expensive.total_j > cheap.total_j


def test_render_lists_components():
    system = VansSystem()
    run_writes(system, 10)
    text = energy_of(system).render()
    assert "media-write" in text
    assert "total" in text


def test_fractions_sum_to_one():
    system = VansSystem()
    run_writes(system, 20)
    report = energy_of(system)
    total = sum(report.fraction(c) for c in report.by_component)
    assert total == pytest.approx(1.0)
