"""Config serialization round-trips and validation."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.common.units import GIB, KIB
from repro.vans import VansConfig, VansSystem
from repro.vans.serialization import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)


def test_dump_contains_headline_parameters():
    dump = config_to_dict(VansConfig())
    assert dump["ndimms"] == 1
    assert dump["dimm"]["rmw"]["entries"] == 64
    assert dump["dimm"]["ait"]["entry_bytes"] == 4 * KIB
    assert dump["dimm"]["dram_timing"] == "DDR4-2666"


def test_partial_override():
    cfg = config_from_dict({"ndimms": 6, "interleaved": True,
                            "dimm": {"rmw": {"entries": 128}}})
    assert cfg.ndimms == 6
    assert cfg.dimm.rmw.entries == 128
    # untouched parameters keep the Optane defaults
    assert cfg.dimm.ait.entries == 4096


def test_unknown_key_rejected():
    with pytest.raises(ConfigError, match="unknown config key"):
        config_from_dict({"dimm": {"rnw": {"entries": 1}}})
    with pytest.raises(ConfigError, match="unknown config key"):
        config_from_dict({"banana": 3})


def test_timing_preset_by_name():
    cfg = config_from_dict({"dimm": {"dram_timing": "DDR3-1600"}})
    assert cfg.dimm.dram_timing.name == "DDR3-1600"
    with pytest.raises(ConfigError, match="preset"):
        config_from_dict({"dimm": {"dram_timing": "DDR9-9000"}})


def test_invariants_still_enforced():
    """dataclass __post_init__ validation runs on deserialized configs."""
    with pytest.raises(ConfigError):
        config_from_dict({"ndimms": 1, "interleaved": True})


def test_file_roundtrip(tmp_path):
    original = VansConfig().with_dimms(6).with_media_capacity(8 * GIB)
    path = tmp_path / "system.json"
    save_config(original, path)
    loaded = load_config(path)
    assert loaded == original


def test_loaded_config_builds_working_system(tmp_path):
    path = tmp_path / "c.json"
    path.write_text('{"dimm": {"rmw": {"entries": 32}}}')
    system = VansSystem(load_config(path))
    assert system.read(0, 0) > 0
    assert system.config.dimm.rmw.capacity_bytes == 32 * 256


@given(st.integers(1, 6), st.sampled_from([32, 64, 128]),
       st.sampled_from([1024, 4096]))
def test_dict_roundtrip_property(ndimms, rmw_entries, ait_entries):
    cfg = config_from_dict({
        "ndimms": ndimms,
        "interleaved": ndimms > 1,
        "dimm": {"rmw": {"entries": rmw_entries},
                 "ait": {"entries": ait_entries}},
    })
    again = config_from_dict(config_to_dict(cfg))
    assert again == cfg
