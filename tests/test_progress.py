"""Progress reporting: frame cadence, the monotone run clock, and the
byte-identity contract (a run with a reporter attached produces exactly
the payload a run without one does).
"""

from __future__ import annotations

from repro.progress import (NULL_PROGRESS, SNAPSHOT_KEY_CAP,
                            ProgressReporter, TelemetryFanout, current,
                            session)


class FakeClock:
    """Deterministic wall clock for throttle tests."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def make_reporter(frames, **kwargs):
    clock = kwargs.pop("clock", FakeClock())
    reporter = ProgressReporter(emit=frames.append, clock=clock, **kwargs)
    return reporter, clock


class TestReporterUnit:
    def test_frames_due_on_interval_boundaries(self):
        frames = []
        reporter, _ = make_reporter(frames, interval_ps=1000,
                                    min_wall_s=0.0)
        reporter.tick(100)
        assert frames == []            # first boundary not crossed yet
        reporter.tick(1500)
        assert len(frames) == 1
        reporter.tick(1600)            # same interval: not due again
        assert len(frames) == 1
        reporter.tick(2100)
        assert len(frames) == 2
        assert frames[-1]["done_requests"] == 4

    def test_wall_clock_throttle(self):
        frames = []
        reporter, clock = make_reporter(frames, interval_ps=1000,
                                        min_wall_s=1.0)
        reporter.tick(1500)
        assert len(frames) == 1        # first emission always passes
        reporter.tick(2500)            # due, but wall clock unchanged
        assert len(frames) == 1
        clock.t = 2.0
        reporter.tick(3500)
        assert len(frames) == 2

    def test_phase_and_finalize_always_emit(self):
        frames = []
        reporter, _ = make_reporter(frames, min_wall_s=100.0)
        reporter.phase("warmup")       # bypasses the wall throttle
        reporter.finalize()
        assert len(frames) >= 2
        assert frames[0]["phase"] == "warmup"
        assert [f["frame"] for f in frames] == [1, 2]

    def test_run_clock_monotone_across_system_domains(self):
        frames = []
        reporter, _ = make_reporter(frames, interval_ps=100,
                                    min_wall_s=0.0)
        reporter.attach(object())
        reporter.tick(500)
        reporter.tick(900)
        assert reporter.sim_time_ns == 0   # 900 ps < 1 ns
        reporter.attach(object())          # fresh sim-clock domain
        reporter.tick(100)                 # folds: run clock = 900 + 100
        assert reporter._base == 900
        sims = [f["sim_time_ns"] for f in frames]
        assert sims == sorted(sims)

    def test_attach_same_system_twice_does_not_fold(self):
        frames = []
        reporter, _ = make_reporter(frames)
        system = object()
        reporter.attach(system)
        reporter.tick(500)
        reporter.attach(system)
        assert reporter._base == 0

    def test_snapshot_key_cap(self):
        class Wide:
            def instrument_snapshot(self):
                return {f"k{i:03d}": i for i in range(SNAPSHOT_KEY_CAP * 3)}

        frames = []
        reporter, _ = make_reporter(frames)
        reporter.attach(Wide())
        reporter.finalize()
        telemetry = frames[-1]["telemetry"]
        # cap + the reporter's own "systems" count
        assert len(telemetry) <= SNAPSHOT_KEY_CAP + 1
        assert telemetry["systems"] == 1

    def test_snapshot_skips_raising_and_non_numeric(self):
        class Bad:
            def instrument_snapshot(self):
                raise RuntimeError("boom")

        class Mixed:
            def instrument_snapshot(self):
                return {"n": 3, "s": "text", "b": True}

        frames = []
        reporter, _ = make_reporter(frames)
        reporter.attach(Bad())
        reporter.attach(Mixed())
        reporter.finalize()
        telemetry = frames[-1]["telemetry"]
        assert telemetry["n"] == 3
        assert "s" not in telemetry and "b" not in telemetry

    def test_emit_exceptions_are_swallowed(self):
        def explode(frame):
            raise BrokenPipeError("gone")

        reporter = ProgressReporter(emit=explode)
        reporter.phase("x")            # must not raise
        reporter.finalize()
        assert reporter.frames == 2


class TestSession:
    def test_null_session_and_stack(self):
        assert current() is NULL_PROGRESS
        with session(None) as reporter:
            assert reporter is NULL_PROGRESS
            assert current() is NULL_PROGRESS
        frames = []
        live = ProgressReporter(emit=frames.append)
        with session(live) as reporter:
            assert reporter is live
            assert current() is live
        assert current() is NULL_PROGRESS
        assert len(frames) == 1        # finalize on exit

    def test_null_progress_is_inert(self):
        NULL_PROGRESS.attach(object())
        NULL_PROGRESS.tick(123)
        NULL_PROGRESS.phase("x")
        NULL_PROGRESS.finalize()
        assert NULL_PROGRESS.enabled is False


class TestTelemetryFanout:
    def test_forwards_to_enabled_sinks_only(self):
        class Sink:
            enabled = True

            def __init__(self):
                self.ticks = []

            def tick(self, now_ps):
                self.ticks.append(now_ps)

            def attach(self, system):
                pass

            def finalize(self):
                self.ticks.append("end")

        class Disabled(Sink):
            enabled = False

        a, b, dead = Sink(), Sink(), Disabled()
        fan = TelemetryFanout(a, b, dead)
        assert fan.enabled
        fan.tick(7)
        fan.tick(9)
        fan.finalize()
        assert a.ticks == b.ticks == [7, 9, "end"]
        assert dead.ticks == []


class TestIntegration:
    OPS = [{"op": "read", "addr": 0, "count": 2000, "stride": 64}]

    def test_stream_with_reporter_is_byte_identical(self):
        from repro.experiments.exec import run_stream

        frames = []
        reporter = ProgressReporter(emit=frames.append,
                                    interval_ps=50_000, min_wall_s=0.0)
        with_progress = run_stream("vans", self.OPS, progress=reporter)
        plain = run_stream("vans", self.OPS)
        assert with_progress == plain
        assert len(frames) >= 2
        sims = [f["sim_time_ns"] for f in frames]
        assert sims == sorted(sims)
        assert frames[0]["phase"] == "stream:vans"
        assert frames[-1]["done_requests"] >= 2000

    def test_experiment_with_reporter_matches_plain_payload(self):
        from repro.experiments.exec import run_experiment
        from repro.experiments.export import result_to_dict
        from repro.tools.serve_cli import payload_fingerprint

        frames = []
        reporter = ProgressReporter(emit=frames.append,
                                    interval_ps=1_000_000,
                                    min_wall_s=0.0)
        with_progress = [payload_fingerprint(result_to_dict(r))
                         for r in run_experiment("fig1", seed=42,
                                                 progress=reporter)]
        plain = [payload_fingerprint(result_to_dict(r))
                 for r in run_experiment("fig1", seed=42)]
        assert with_progress == plain
        assert len(frames) >= 2
        sims = [f["sim_time_ns"] for f in frames]
        assert sims == sorted(sims)
        assert frames[0]["phase"] == "fig1"

    def test_reporter_coexists_with_telemetry_sampler(self):
        """With both sessions active the sampler's timeline must be
        exactly what it records alone (the fanout tees, never alters)."""
        from repro.experiments.exec import run_experiment
        from repro.experiments.export import result_to_dict

        telemetry = {"interval_ps": 200_000}
        reporter = ProgressReporter(emit=lambda f: None,
                                    interval_ps=1_000_000,
                                    min_wall_s=0.0)
        both = [result_to_dict(r)
                for r in run_experiment("fig1", seed=42,
                                        telemetry=telemetry,
                                        progress=reporter)]
        alone = [result_to_dict(r)
                 for r in run_experiment("fig1", seed=42,
                                         telemetry=telemetry)]
        assert [d.get("telemetry") for d in both] == \
            [d.get("telemetry") for d in alone]
