"""Experiment result export and the runner CLI."""

import json

import pytest

from repro.engine.stats import LatencySeries
from repro.experiments.common import ExperimentResult
from repro.experiments.export import (
    load_json,
    result_to_dict,
    save_csv,
    save_json,
)
from repro.experiments.runner import main as runner_main


def sample_result():
    result = ExperimentResult("figX", "sample", columns=["a", "b"])
    result.add_row(1, 2.5)
    result.add_row(3, 4.0)
    series = LatencySeries("curve")
    series.add(1024, 130.0)
    series.add(2048, 190.0)
    result.series["curve"] = series
    result.metrics["m"] = 0.5
    result.notes = "note"
    return result


def test_result_to_dict_roundtrip_fields():
    d = result_to_dict(sample_result())
    assert d["experiment"] == "figX"
    assert d["rows"] == [[1, 2.5], [3, 4.0]]
    assert d["series"]["curve"]["x"] == [1024, 2048]
    assert d["metrics"]["m"] == 0.5


def test_save_and_load_json(tmp_path):
    path = tmp_path / "out.json"
    assert save_json([sample_result(), sample_result()], path) == 2
    loaded = load_json(path)
    assert len(loaded) == 2
    assert loaded[0]["title"] == "sample"


def test_save_csv(tmp_path):
    path = tmp_path / "out.csv"
    assert save_csv(sample_result(), path) == 2
    text = path.read_text()
    assert text.splitlines()[0] == "a,b"
    assert "2.5" in text


def test_runner_cli_with_json_export(tmp_path, capsys):
    out = tmp_path / "fig1.json"
    assert runner_main(["fig1", "--json", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "fig1a" in stdout
    data = json.loads(out.read_text())
    assert {d["experiment"] for d in data} == {"fig1a", "fig1b"}


def test_runner_cli_plot_flag(capsys):
    assert runner_main(["fig1", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "legend:" in out
