"""AIT translation-cache design-space knob."""

from dataclasses import replace

import pytest

from repro.common.units import KIB, MIB
from repro.vans import VansConfig, VansSystem
from repro.vans.config import AitConfig


def with_table_cache(entries: int) -> VansConfig:
    cfg = VansConfig()
    ait = replace(cfg.dimm.ait, table_cache_entries=entries)
    return replace(cfg, dimm=replace(cfg.dimm, ait=ait))


def test_disabled_by_default():
    system = VansSystem()
    system.read(0, 0)
    assert "dimm.table_cache_hits" not in system.counters()


def test_hits_on_hot_pages():
    system = VansSystem(with_table_cache(64))
    now = system.read(0, 0)
    system.read(256, now + 10**6)  # same 4KB page, different block
    counters = system.counters()
    assert counters["dimm.table_cache_hits"] == 1
    assert counters["dimm.table_cache_misses"] >= 1


def test_lru_capacity():
    system = VansSystem(with_table_cache(2))
    now = 0
    for page in range(3):
        now = system.read(page * 4 * KIB, now)
    # page 0 evicted by page 2
    before = system.counters().get("dimm.table_cache_hits", 0)
    system.read(512, now + 10**6)  # page 0 again -> miss
    assert system.counters().get("dimm.table_cache_hits", 0) == before


def test_table_cache_cuts_hot_page_latency():
    """With the cache, repeated misses within one page skip the DRAM
    table lookup — visible as lower RMW-miss latency."""
    def second_block_latency(cfg):
        system = VansSystem(cfg)
        now = system.read(0, 0)
        t0 = now + 10**6
        return system.read(1024, t0) - t0  # same page, RMW miss

    base = second_block_latency(VansConfig())
    cached = second_block_latency(with_table_cache(1024))
    assert cached < base


def test_validated_config_unchanged():
    """The Optane-validated latency tiers do not move when the knob
    stays off (regression guard for the feature plumbing)."""
    system = VansSystem()
    done = system.read(0, 0)
    assert 300_000 < done < 500_000  # cold AIT+media miss tier
