"""LENS probers end-to-end against VANS: the reverse-engineering claims.

These are the reproduction's core integration tests — LENS must recover
the planted microarchitecture parameters from timing alone.
"""

import pytest

from repro.common.units import KIB, MIB
from repro.lens.probers.buffer import BufferProber
from repro.lens.probers.performance import PerformanceProber
from repro.lens.probers.policy import PolicyProber
from repro.lens.report import TABLE_I, TABLE_II, characterize
from repro.vans import VansConfig, VansSystem

CONFIG = VansConfig()
FACTORY = staticmethod(lambda: VansSystem(CONFIG))


@pytest.fixture(scope="module")
def buffer_report():
    return BufferProber(lambda: VansSystem(CONFIG)).run()


class TestBufferProber:
    def test_read_capacities_found(self, buffer_report):
        assert buffer_report.read_capacities == [16 * KIB, 16 * MIB]

    def test_write_capacities_found(self, buffer_report):
        assert buffer_report.write_capacities == [512, 4 * KIB]

    def test_read_entry_sizes_found(self, buffer_report):
        assert buffer_report.read_entry_sizes == [256, 4 * KIB]

    def test_write_entry_sizes_found(self, buffer_report):
        assert buffer_report.write_entry_sizes == [512, 256]

    def test_hierarchy_is_inclusive(self, buffer_report):
        assert buffer_report.hierarchy == "inclusive"

    def test_levels_property(self, buffer_report):
        assert buffer_report.levels == 2


class TestPolicyProber:
    @pytest.fixture(scope="class")
    def policy_report(self, fast_wear_config):
        prober = PolicyProber(
            lambda: VansSystem(fast_wear_config),
            interleaved_factory=lambda: VansSystem(
                fast_wear_config.with_dimms(6)),
            overwrite_iterations=fast_wear_config.dimm.wear.migrate_threshold * 6,
            tail_scan_bytes=fast_wear_config.dimm.wear.migrate_threshold * 384,
        )
        return prober.run()

    def test_migration_latency_measured(self, policy_report, fast_wear_config):
        expected = fast_wear_config.dimm.wear.migration_ps / 1e6
        assert policy_report.migration_latency_us == pytest.approx(
            expected, rel=0.15)

    def test_migration_interval_matches_threshold(self, policy_report,
                                                  fast_wear_config):
        threshold = fast_wear_config.dimm.wear.migrate_threshold
        assert policy_report.migration_interval_iters == pytest.approx(
            threshold, rel=0.1)

    def test_migration_granularity_is_wear_block(self, policy_report,
                                                 fast_wear_config):
        assert policy_report.migration_granularity == \
            fast_wear_config.dimm.wear.block_bytes

    def test_interleave_granularity_detected(self, policy_report):
        assert policy_report.interleave_granularity == 4 * KIB

    def test_interleaving_speeds_up(self, policy_report):
        assert policy_report.interleave_speedup > 1.0


class TestPerformanceProber:
    def test_level_latencies_ordered(self):
        report = PerformanceProber(lambda: VansSystem(CONFIG)).run()
        lat = report.level_latency_ns
        assert lat["L1"] < lat["L2"] < lat["media"]

    def test_bandwidths_positive(self):
        report = PerformanceProber(lambda: VansSystem(CONFIG)).run()
        assert all(bw > 0 for bw in report.level_bandwidth_gbs.values())


class TestCharacterize:
    @pytest.fixture(scope="class")
    def chara(self, fast_wear_config):
        threshold = fast_wear_config.dimm.wear.migrate_threshold
        return characterize(
            lambda: VansSystem(fast_wear_config),
            interleaved_factory=lambda: VansSystem(
                fast_wear_config.with_dimms(6)),
            overwrite_iterations=threshold * 4,
            tail_scan_bytes=threshold * 384,  # 1.5x threshold in 256B units
        )

    def test_all_parameters_correct(self, chara, fast_wear_config):
        truth = fast_wear_config.describe()
        truth["rmw_entry"] = fast_wear_config.dimm.rmw.entry_bytes
        truth["ait_entry"] = fast_wear_config.dimm.ait.entry_bytes
        verdicts = chara.compare_to_truth(truth)
        wrong = [k for k, v in verdicts.items() if not v]
        assert not wrong, f"LENS mischaracterized: {wrong}"

    def test_render_mentions_key_structures(self, chara):
        text = chara.render()
        for token in ("RMW buffer", "AIT buffer", "WPQ", "LSQ",
                      "inclusive", "wear-leveling"):
            assert token in text


class TestStaticTables:
    def test_table_i_lens_dominates(self):
        lens_caps = TABLE_I["rows"]["LENS"]
        assert all(c == "yes" for c in lens_caps)
        assert TABLE_I["rows"]["MLC"].count("yes") < len(lens_caps)

    def test_table_ii_covers_all_probers(self):
        probers = {row[0] for row in TABLE_II}
        assert probers == {"Buffer", "Policy", "Perf."}
