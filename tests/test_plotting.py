"""ASCII plotting helpers."""

from repro.engine.stats import LatencySeries
from repro.experiments.plotting import bar_chart, line_plot, sparkline


def series(points):
    s = LatencySeries("t")
    for x, y in points:
        s.add(x, y)
    return s


class TestSparkline:
    def test_monotone_rise(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] < line[-1]
        assert len(line) == 4

    def test_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestBarChart:
    def test_proportional_bars(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") < lines[1].count("#")
        assert "2.00" in lines[1]

    def test_labels_aligned(self):
        chart = bar_chart(["x", "long-label"], [1, 1])
        lines = chart.splitlines()
        assert lines[0].index("#") == lines[1].index("#")


class TestLinePlot:
    def test_two_series_plot(self):
        plot = line_plot({
            "vans": series([(1024, 130), (16384, 130), (1 << 20, 241),
                            (1 << 26, 343)]),
            "pmep": series([(1024, 190), (16384, 195), (1 << 20, 210),
                            (1 << 26, 215)]),
        })
        assert "*" in plot and "+" in plot
        assert "legend:" in plot
        assert "1K" in plot and "64M" in plot

    def test_empty_and_tiny(self):
        assert line_plot({}) == ""
        assert line_plot({"x": series([(1, 1)])}) == ""

    def test_extremes_on_grid_edges(self):
        plot = line_plot({"s": series([(1, 0.0), (2, 50.0), (3, 100.0)])},
                         height=5)
        rows = plot.splitlines()
        assert "*" in rows[0]       # max on the top row
        assert "*" in rows[4]       # min on the bottom row
