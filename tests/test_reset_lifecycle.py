"""Resettable target lifecycle and the registry warm cache.

The contract under test: for every system target,

    build -> drive -> reset -> drive

produces *bit-identical* timings, counters, and snapshots to driving a
freshly built system — which is what lets the registry park finished
systems (``release``) and hand them back out (``acquire``) instead of
rebuilding, and what keeps served sessions bit-identical to batch runs.
"""

from __future__ import annotations

import pytest

from repro import registry
from repro.common.errors import (
    UnknownExperimentError,
    UnknownOverrideError,
    UnknownTargetError,
)
from repro.flight.recorder import FlightRecorder, session as flight_session


@pytest.fixture(autouse=True)
def _no_warm_cache_leak():
    """Every test starts and ends with the warm cache off."""
    registry.disable_warm_cache()
    yield
    registry.disable_warm_cache()


def drive(system, nops: int = 1500, region: int = 1 << 20):
    """Deterministic mixed workload; returns the observable outcome."""
    now = 0
    for i in range(nops):
        now = system.read((i * 67 * 64) % region, now)
        now = system.write((i * 131 * 64) % region, now)
        if i % 64 == 0:
            now = system.fence(now)
    stats = (dict(system.stats.snapshot())
             if hasattr(system, "stats") else {})
    return now, stats, dict(system.instrument_snapshot())


SYSTEM_TARGETS = registry.target_names(systems_only=True)


class TestResetBitIdentity:
    @pytest.mark.parametrize("name", SYSTEM_TARGETS)
    def test_reset_equals_fresh_build(self, name):
        fresh = drive(registry.build(name))
        reused_system = registry.build(name)
        drive(reused_system)           # dirty it
        reused_system.reset()
        assert drive(reused_system) == fresh

    @pytest.mark.parametrize("name", SYSTEM_TARGETS)
    def test_acquire_release_reuse_equals_rebuild(self, name):
        baseline = drive(registry.build(name))
        registry.enable_warm_cache(limit=4)
        first = registry.acquire(name)
        assert drive(first) == baseline
        assert registry.release(first) is True
        second = registry.acquire(name)
        assert second is first, "warm cache should hand back the " \
                                "parked instance"
        assert drive(second) == baseline
        assert registry.warm_cache_stats()["hits"] == 1

    def test_reset_clears_memory_mode_tags(self):
        system = registry.build("memory-mode")
        drive(system, nops=200)
        assert system._tags
        system.reset()
        assert not system._tags
        assert system.hit_rate == 0.0

    def test_reset_clears_quartz_epoch_state(self):
        system = registry.build("quartz")
        drive(system, nops=300)
        assert system._accesses > 0
        system.reset()
        assert system._accesses == 0
        assert system.injected_stall_ps == 0


class TestWarmCachePolicy:
    def test_disabled_cache_never_parks(self):
        system = registry.build("vans")
        assert registry.release(system) is False
        assert registry.warm_cache_stats()["size"] == 0

    def test_cache_is_bounded(self):
        registry.enable_warm_cache(limit=1)
        a = registry.build("vans")
        b = registry.build("vans")
        assert registry.release(a) is True
        assert registry.release(b) is False          # full: dropped
        stats = registry.warm_cache_stats()
        assert stats["size"] == 1 and stats["dropped"] == 1

    def test_distinct_overrides_never_cross(self):
        registry.enable_warm_cache(limit=4)
        plain = registry.acquire("vans")
        lazy = registry.acquire("vans", lazy_cache=True)
        registry.release(plain)
        registry.release(lazy)
        again = registry.acquire("vans", lazy_cache=True)
        assert again is lazy
        assert registry.acquire("vans") is plain

    def test_flight_wired_systems_are_ineligible(self):
        registry.enable_warm_cache(limit=4)
        recorder = FlightRecorder()
        with flight_session(recorder):
            system = registry.build("vans")
        assert system.flight is recorder
        assert registry.release(system) is False
        assert registry.warm_cache_stats()["ineligible"] == 1

    def test_active_flight_session_bypasses_cache(self):
        registry.enable_warm_cache(limit=4)
        parked = registry.acquire("vans")
        registry.release(parked)
        with flight_session(FlightRecorder()):
            fresh = registry.build("vans")
        assert fresh is not parked, \
            "a flight session must force a fresh constructor-wired build"

    def test_unhashable_override_is_uncacheable(self):
        registry.enable_warm_cache(limit=4)
        assert registry._warm_key("vans", {"config": [1, 2]}) is None
        system = registry.build("ramulator-ddr4", frontend_ps=30_000)
        assert registry.release(system) is True
        assert registry.acquire("ramulator-ddr4",
                                frontend_ps=30_000) is system

    def test_release_detaches_telemetry(self):
        from repro.target import NULL_TELEMETRY
        from repro.telemetry import TelemetrySampler
        from repro.telemetry import session as telemetry_session
        registry.enable_warm_cache(limit=4)
        with telemetry_session(TelemetrySampler(interval_ps=10_000)):
            system = registry.build("vans")
            assert system.telemetry is not NULL_TELEMETRY
        registry.release(system)
        assert system.telemetry is NULL_TELEMETRY


class TestOverrideValidation:
    def test_typo_raises_and_names_the_key(self):
        with pytest.raises(UnknownOverrideError) as exc_info:
            registry.build("vans", lazy_cahe=True)
        message = str(exc_info.value)
        assert "lazy_cahe" in message
        assert "lazy_cache" in message          # suggestion
        assert "vans" in message

    def test_every_documented_vans_knob_is_allowed(self):
        allowed = registry.spec("vans").allowed
        for knob in ("ndimms", "interleaved", "media_capacity",
                     "lazy_cache", "migrate_threshold",
                     "wear_decay_window", "combine_window_ps",
                     "engine_holds_partial", "ddrt_detailed",
                     "table_cache_entries", "collect_latency_histograms",
                     "config", "track_line_wear", "instrument"):
            assert knob in allowed, knob

    def test_baseline_override_surface(self):
        with pytest.raises(UnknownOverrideError):
            registry.build("pmep", frontend_ps=1)  # a slow-dram knob
        registry.build("pmep", read_delay_ps=1000)  # valid

    def test_factory_validates_overrides_eagerly(self):
        with pytest.raises(UnknownOverrideError):
            registry.factory("vans", lazy_cahe=True)

    def test_externally_registered_specs_skip_validation(self):
        spec = registry.TargetSpec(
            "test-unvalidated", "no allowed set declared",
            lambda **kw: registry.build("quartz"))
        registry.register_target(spec)
        try:
            assert registry.build("test-unvalidated",
                                  anything_goes=True) is not None
        finally:
            registry._SPECS.pop("test-unvalidated", None)


class TestSuggestions:
    def test_unknown_target_suggests_closest(self):
        with pytest.raises(UnknownTargetError) as exc_info:
            registry.spec("van")
        message = str(exc_info.value)
        assert "did you mean" in message and "'vans'" in message
        assert "choose from:" in message

    def test_unknown_experiment_suggests_closest(self):
        from repro.experiments.exec import validate_ids
        with pytest.raises(UnknownExperimentError) as exc_info:
            validate_ids(["fig99"])
        message = str(exc_info.value)
        assert "did you mean" in message
        assert "known experiments:" in message

    def test_no_suggestion_for_hopeless_typos(self):
        with pytest.raises(UnknownTargetError) as exc_info:
            registry.spec("zzzzzzzzzz")
        assert "did you mean" not in str(exc_info.value)
