"""Automatic shrinking: determinism, signature pinning, cut remap."""

import pytest

from repro.litmus import LitmusCase, check, random_case, run_case, shrink_case
from repro.litmus.shrink import _remap_cut, matches, signature_of

#: the pinned Section V-C chase: a WPQ-acknowledged write lost because
#: the Lazy cache held the block dirty at the cut
BETRAYAL = ("loss", ("wpq", "lazy_dirty"))


def _betrayal_case():
    # seed 28 on vans-lazy is a known reproducer (also pinned in the
    # committed corpus as vans-lazy-betrayal-min)
    return random_case(28, target="vans-lazy")


class TestShrink:
    def test_betrayal_shrinks_to_six_ops(self):
        result = shrink_case(_betrayal_case(), signature=BETRAYAL)
        assert len(result.case.ops) <= 6
        assert result.signature == BETRAYAL
        assert result.steps >= 1
        assert result.case.name.endswith("-min")

    def test_shrink_is_deterministic(self):
        a = shrink_case(_betrayal_case(), signature=BETRAYAL)
        b = shrink_case(_betrayal_case(), signature=BETRAYAL)
        assert a.as_dict() == b.as_dict()

    def test_minimal_case_still_reproduces(self):
        result = shrink_case(_betrayal_case(), signature=BETRAYAL)
        verdict = check(result.case, run_case(result.case))
        assert matches(verdict, BETRAYAL)
        # the shrinker's final verdict is the re-verified one
        assert result.verdict.as_dict() == verdict.as_dict()

    def test_addresses_canonicalized(self):
        result = shrink_case(_betrayal_case(), signature=BETRAYAL)
        blocks = []
        for item in result.case.ops:
            if item.get("op") == "fence":
                continue
            block = int(item["addr"]) // 256
            if block not in blocks:
                blocks.append(block)
        assert blocks == list(range(len(blocks)))

    def test_default_signature_is_smallest_family(self):
        # unpinned: the shrinker chases the verdict's smallest loss
        # family and still produces a reproducer of *that* family
        case = _betrayal_case()
        verdict = check(case, run_case(case))
        expected = signature_of(verdict)
        result = shrink_case(case)
        assert result.signature == expected
        assert matches(result.verdict, expected)

    def test_pinning_unexhibited_signature_raises(self):
        # a fenced nt-store program has no losses at all
        case = LitmusCase(
            name="clean", target="vans",
            ops=({"op": "write", "addr": 0}, {"op": "fence"},
                 {"op": "write", "addr": 64}),
            cut_at_request=2, seed=0, overrides={})
        with pytest.raises(ValueError, match="does not exhibit"):
            shrink_case(case, signature=BETRAYAL)

    def test_clean_case_returns_clean(self):
        case = LitmusCase(
            name="clean", target="vans",
            ops=({"op": "write", "addr": 0}, {"op": "write", "addr": 64}),
            cut_at_request=2, seed=0, overrides={})
        result = shrink_case(case)
        assert result.signature == ("clean", None)
        assert result.case is case
        assert result.evals == 1

    def test_max_evals_bounds_work(self):
        result = shrink_case(_betrayal_case(), signature=BETRAYAL,
                             max_evals=5)
        assert result.evals <= 5
        # even a truncated shrink must hand back a real reproducer
        assert matches(check(result.case, run_case(result.case)),
                       BETRAYAL)


class TestCutRemap:
    OPS = ({"op": "write", "addr": 0},      # request 1
           {"op": "fence"},
           {"op": "store", "addr": 64},
           {"op": "flush", "addr": 64},     # request 2
           {"op": "read", "addr": 128})     # request 3

    def test_identity_keep_preserves_ordinal(self):
        kept = list(range(len(self.OPS)))
        # cut originally at op index 3 (request 2)
        assert _remap_cut(self.OPS, kept, 3) == 2

    def test_removing_earlier_request_shifts_ordinal(self):
        kept = [1, 2, 3, 4]  # dropped the first write
        assert _remap_cut(self.OPS, kept, 3) == 1

    def test_removing_non_request_ops_keeps_ordinal(self):
        kept = [0, 3, 4]  # dropped fence + store
        assert _remap_cut(self.OPS, kept, 3) == 2

    def test_removing_the_trigger_moves_to_next_request(self):
        kept = [0, 1, 2, 4]  # dropped the flush that triggered the cut
        # fires at the next surviving request op (the read)
        assert _remap_cut(self.OPS, kept, 3) == 2

    def test_trigger_off_the_end_is_rejected(self):
        kept = [0, 1, 2]  # nothing at/after the trigger survives
        assert _remap_cut(self.OPS, kept, 3) is None
