"""Trace statistics and generator-profile checks."""

import pytest

from repro.cpu.system import MemOp
from repro.workloads import (
    fio_write_trace,
    linkedlist_trace,
    redis_trace,
    spec_trace,
    ycsb_trace,
)
from repro.workloads.spec import spec_workload
from repro.workloads.stats import analyze


def test_counts_basic():
    stats = analyze([
        MemOp(nonmem=10, vaddr=0),
        MemOp(nonmem=10, vaddr=64, is_write=True, persistent=True),
        MemOp(nonmem=10, vaddr=0, dependent=True),
    ])
    assert stats.ops == 3
    assert stats.instructions == 33
    assert stats.writes == 1
    assert stats.persistent_writes == 1
    assert stats.unique_lines == 2
    assert stats.write_fraction == pytest.approx(1 / 3)
    assert stats.dependent_fraction == pytest.approx(1 / 2)


def test_empty_trace():
    stats = analyze([])
    assert stats.ops == 0
    assert stats.write_fraction == 0.0
    assert stats.mem_ratio == 0.0


def test_fio_is_all_persistent_writes():
    stats = analyze(fio_write_trace(500))
    assert stats.write_fraction == 1.0
    assert stats.persistent_writes == stats.ops


def test_linkedlist_is_all_dependent():
    stats = analyze(linkedlist_trace(500))
    assert stats.write_fraction == 0.0
    assert stats.dependent_fraction == 1.0


def test_linkedlist_mkpt_counted():
    stats = analyze(linkedlist_trace(200, mkpt=True))
    assert stats.mkpt_hints == 200


def test_ycsb_hot_line_concentration():
    stats = analyze(ycsb_trace(8000))
    assert stats.top_line_share > 0.02  # zipf: one key dominates


def test_spec_write_fractions_match_profiles():
    for name in ("gcc", "lbm"):
        wl = spec_workload(name)
        stats = analyze(spec_trace(name, 6000))
        assert stats.write_fraction == pytest.approx(wl.write_frac, abs=0.05)


def test_redis_read_mostly():
    stats = analyze(redis_trace(3000))
    assert stats.write_fraction < 0.1
    assert stats.dependent_fraction > 0.4


def test_render_mentions_fields():
    text = analyze(linkedlist_trace(50)).render()
    assert "footprint" in text
    assert "dependent" in text
