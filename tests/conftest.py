"""Shared fixtures: small, fast system configurations for tests."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common.units import KIB, MIB
from repro.media.wear import WearConfig
from repro.vans import VansConfig, VansSystem


@pytest.fixture
def vans_config() -> VansConfig:
    """Default single-DIMM Optane configuration."""
    return VansConfig()


@pytest.fixture
def vans(vans_config) -> VansSystem:
    return VansSystem(vans_config)


@pytest.fixture
def vans_factory(vans_config):
    """Fresh-system factory (the shape LENS probers expect)."""
    return lambda: VansSystem(vans_config)


@pytest.fixture(scope="session")
def fast_wear_config() -> VansConfig:
    """Wear-leveling scaled down so migrations happen within small tests.

    The threshold must stay above 256 (one 64KB block holds 256 x 256B
    units), otherwise a single sequential pass over any region triggers
    migrations and the Fig. 7c granularity signature disappears.
    """
    cfg = VansConfig()
    wear = WearConfig(migrate_threshold=400)
    return replace(cfg, dimm=replace(cfg.dimm, wear=wear))
