"""Multi-channel DRAM device."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import MIB
from repro.dram.device import DramDevice
from repro.dram.timing import DDR4_2666
from repro.dram.verifier import DDR4ProtocolChecker


def test_channels_must_be_power_of_two():
    with pytest.raises(ConfigError):
        DramDevice(DDR4_2666, nchannels=3)


def test_line_interleave_across_channels():
    dev = DramDevice(DDR4_2666, nchannels=4)
    assert dev._channel_of(0) == 0
    assert dev._channel_of(64) == 1
    assert dev._channel_of(256) == 0


def test_parallel_channels_beat_single():
    """Back-to-back line accesses finish sooner with more channels."""
    def total_time(nchannels):
        dev = DramDevice(DDR4_2666, nchannels=nchannels)
        done = 0
        for i in range(32):
            done = max(done, dev.access(i * 64, False, 0))
        return done

    assert total_time(4) < total_time(1)


def test_access_block_streams_lines():
    dev = DramDevice(DDR4_2666, nchannels=1)
    one = dev.access(0, False, 0)
    dev.reset()
    block = dev.access_block(0, 4096, False, 0)
    # 64 pipelined line accesses cost far less than 64 serial latencies
    assert block < one * 16
    assert block > one


def test_address_wraps_capacity():
    dev = DramDevice(DDR4_2666, nchannels=1, capacity_bytes=1 * MIB)
    done = dev.access(5 * MIB, False, 0)  # wraps, must not blow up
    assert done > 0


def test_row_hit_rate_tracked():
    dev = DramDevice(DDR4_2666, nchannels=1)
    now = 0
    for i in range(32):
        now = dev.access(i * 64, False, now)
    assert dev.row_hit_rate > 0.9


def test_device_trace_is_protocol_legal():
    dev = DramDevice(DDR4_2666, nchannels=2, record_commands=True)
    now = 0
    for i in range(128):
        now = dev.access(i * 192, i % 2 == 0, now)
    for channel in dev.channels:
        DDR4ProtocolChecker(DDR4_2666).check(channel.commands)
