"""Trace capture / file round-trip / replay."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ReproError
from repro.engine.request import Op
from repro.vans import VansSystem
from repro.vans.tracing import (
    ReplayResult,
    TraceRecord,
    TracingProxy,
    load_trace,
    replay,
    save_trace,
)

_MEM_OPS = [Op.READ, Op.WRITE, Op.WRITE_NT, Op.CLWB]


def test_record_render_parse_roundtrip():
    for record in (TraceRecord(Op.READ, 0x1000, 64),
                   TraceRecord(Op.WRITE_NT, 0x40, 256),
                   TraceRecord(Op.FENCE)):
        assert TraceRecord.parse(record.render()) == record


@given(op=st.sampled_from(_MEM_OPS),
       addr=st.integers(0, (1 << 48) - 1),
       size=st.integers(1, 1 << 16))
def test_render_parse_roundtrip_property(op, addr, size):
    record = TraceRecord(op, addr, size)
    assert TraceRecord.parse(record.render()) == record


@given(addr=st.integers(0, (1 << 48) - 1), size=st.integers(1, 1 << 16))
def test_parse_accepts_decimal_and_hex_addresses(addr, size):
    assert TraceRecord.parse(f"R {addr} {size}") == \
        TraceRecord.parse(f"r {addr:#x} {size}")


def test_fence_roundtrip_ignores_operands():
    assert TraceRecord.parse(TraceRecord(Op.FENCE).render()) == \
        TraceRecord(Op.FENCE)
    assert TraceRecord.parse("f") == TraceRecord(Op.FENCE)


@given(line=st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=40))
def test_parse_never_leaks_non_repro_errors(line):
    """Arbitrary printable garbage either parses or raises ReproError —
    never ValueError/IndexError."""
    try:
        TraceRecord.parse(line)
    except ReproError:
        pass


def test_parse_rejects_bad_numbers_and_negatives():
    for line in ("R zz 64", "R 0x10 banana", "R -64 64", "R 0x10 0"):
        with pytest.raises(ReproError):
            TraceRecord.parse(line)


def test_parse_rejects_garbage():
    with pytest.raises(ReproError):
        TraceRecord.parse("X 0x0 64")
    with pytest.raises(ReproError):
        TraceRecord.parse("R 0x0")
    with pytest.raises(ReproError):
        TraceRecord.parse("")


def test_proxy_records_operations():
    proxy = TracingProxy(VansSystem())
    now = proxy.read(0x100, 0)
    now = proxy.write(0x200, now)
    proxy.fence(now)
    ops = [r.op for r in proxy.records]
    assert ops == [Op.READ, Op.WRITE_NT, Op.FENCE]
    assert proxy.records[0].addr == 0x100


def test_file_roundtrip(tmp_path):
    records = [TraceRecord(Op.READ, i * 64) for i in range(10)]
    records.append(TraceRecord(Op.FENCE))
    path = tmp_path / "t.trace"
    assert save_trace(records, path) == 11
    loaded = list(load_trace(path))
    assert loaded == records


def test_load_skips_comments(tmp_path):
    path = tmp_path / "t.trace"
    path.write_text("# header\n\nR 0x0 64\n")
    assert len(list(load_trace(path))) == 1


def test_replay_produces_stats():
    records = [TraceRecord(Op.READ, i * 4096) for i in range(20)]
    records += [TraceRecord(Op.WRITE_NT, i * 64) for i in range(20)]
    records.append(TraceRecord(Op.FENCE))
    result = replay(records, VansSystem())
    assert isinstance(result, ReplayResult)
    assert result.reads.count == 20
    assert result.writes.count == 20
    assert result.fences == 1
    assert result.read_mean_ns > result.write_mean_ns
    assert result.end_ps > 0


def test_replay_expands_multiline_records():
    result = replay([TraceRecord(Op.WRITE_NT, 0, 256)], VansSystem())
    assert result.writes.count == 4  # 256B = 4 lines


def test_capture_then_replay_reproduces_behaviour(tmp_path):
    """End-to-end: trace a run on one system, replay on a fresh one,
    get comparable latencies (determinism of the trace mode)."""
    proxy = TracingProxy(VansSystem())
    now = 0
    for i in range(50):
        now = proxy.read((i * 4096) % (1 << 20), now)
    path = tmp_path / "cap.trace"
    save_trace(proxy.records, path)

    result = replay(load_trace(path), VansSystem())
    assert result.reads.count == 50
    direct_ns = now / 50 / 1000.0
    assert result.end_ps / 50 / 1000.0 == pytest.approx(direct_ns, rel=0.05)


def test_proxy_save_load_replay_is_bit_identical(tmp_path):
    """Full loop: drive a proxied system with a mixed workload, persist
    the capture, then replay both the in-memory records and the reloaded
    file on fresh systems — all three end states must agree exactly
    (integer-picosecond determinism, no drift through the file format)."""
    proxy = TracingProxy(VansSystem())
    now = 0
    for i in range(30):
        now = proxy.read((i * 4096) % (1 << 20), now)
        now = proxy.write((i * 64) % 4096, now)
        if i % 10 == 9:
            now = proxy.fence(now)
    direct_end = now

    path = tmp_path / "cap.trace"
    count = save_trace(proxy.records, path)
    assert count == len(proxy.records)

    from_memory = replay(proxy.records, VansSystem())
    from_file = replay(load_trace(path), VansSystem())
    assert from_file.end_ps == from_memory.end_ps == direct_end
    assert from_file.reads.count == from_memory.reads.count == 30
    assert from_file.writes.count == from_memory.writes.count == 30
    assert from_file.fences == from_memory.fences == 3
    assert from_file.reads.mean == from_memory.reads.mean
    assert from_file.writes.max == from_memory.writes.max
