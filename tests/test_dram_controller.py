"""Command-level DDR4 controller behaviour."""

import pytest

from repro.dram.command import CmdType
from repro.dram.controller import DramController
from repro.dram.timing import DDR4_2666


def make(record=False, policy="open"):
    return DramController(DDR4_2666, record_commands=record, row_policy=policy)


def test_cold_read_latency_includes_act_rcd_cl():
    ctrl = make()
    t = DDR4_2666
    done = ctrl.access(0, False, 0)
    expected = t.ps(t.trcd) + t.ps(t.cl) + t.ps(t.burst_cycles)
    assert done == expected


def test_row_hit_is_faster_than_miss():
    ctrl = make()
    first = ctrl.access(0, False, 0)
    second = ctrl.access(64, False, first) - first
    assert second < first


def test_row_hit_rate_sequential():
    ctrl = make()
    now = 0
    for i in range(64):
        now = ctrl.access(i * 64, False, now)
    assert ctrl.row_hit_rate > 0.9


def test_row_conflict_requires_precharge():
    ctrl = make(record=True)
    row_bytes = ctrl.mapping.row_bytes
    nbanks = ctrl.mapping.nbanks
    ctrl.access(0, False, 0)
    # same bank, different row: one full row span * nbanks later
    conflict_addr = row_bytes * nbanks
    ctrl.access(conflict_addr, False, 10)
    kinds = [c.kind for c in ctrl.commands]
    assert kinds.count(CmdType.PRE) == 1
    assert kinds.count(CmdType.ACT) == 2


def test_write_then_read_pays_twtr():
    ctrl = make()
    t = DDR4_2666
    w_done = ctrl.access(0, True, 0)
    r_done = ctrl.access(64, False, w_done)
    # the read burst cannot start before tWTR after write data end
    assert r_done >= w_done + t.ps(t.twtr) + t.ps(t.cl)


def test_refresh_issued_when_due():
    ctrl = make(record=True)
    t = DDR4_2666
    ctrl.access(0, False, 0)
    ctrl.access(64, False, 2 * t.ps(t.trefi))
    kinds = [c.kind for c in ctrl.commands]
    assert CmdType.REF in kinds
    assert ctrl.stats.counter("dram.refreshes").value >= 1


def test_closed_page_policy_precharges():
    ctrl = make(record=True, policy="closed")
    ctrl.access(0, False, 0)
    kinds = [c.kind for c in ctrl.commands]
    assert kinds[-1] == CmdType.PRE


def test_closed_policy_no_row_hits():
    ctrl = make(policy="closed")
    now = 0
    for i in range(16):
        now = ctrl.access(i * 64, False, now)
    assert ctrl.row_hit_rate == 0.0


def test_bad_policy_rejected():
    from repro.common.errors import ConfigError
    with pytest.raises(ConfigError):
        DramController(DDR4_2666, row_policy="weird")


def test_commands_not_recorded_by_default():
    ctrl = make(record=False)
    ctrl.access(0, False, 0)
    assert ctrl.commands == []


def test_reset_clears_state():
    ctrl = make(record=True)
    ctrl.access(0, False, 0)
    ctrl.reset()
    assert ctrl.commands == []
    assert ctrl.row_hit_rate == 0.0
