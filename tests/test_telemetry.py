"""Sim-time telemetry: sampler, timelines, manifests, exports."""

import io
import json

import pytest

from repro import registry
from repro.common.errors import ConfigError
from repro.experiments.common import Scale
from repro.experiments.runner import run_all, run_experiment
from repro.instrument import InstrumentBus
from repro.telemetry import (
    NULL_TELEMETRY,
    TelemetrySampler,
    Timeline,
    render_timeline,
    run_manifest,
    save_chrome_counters,
    save_timelines_csv,
    session,
    sparkline,
    to_chrome_counters,
    validate_manifest,
)
from repro.telemetry.sampler import current

INTERVAL = {"interval_ps": 50_000_000}  # 50 simulated us


class TestNullTelemetry:
    def test_disabled_and_noop(self):
        assert NULL_TELEMETRY.enabled is False
        NULL_TELEMETRY.attach(object())
        NULL_TELEMETRY.tick(123)
        NULL_TELEMETRY.finalize()

    def test_current_defaults_to_null(self):
        assert current() is NULL_TELEMETRY

    def test_class_default_on_every_target(self):
        assert registry.build("vans").telemetry is NULL_TELEMETRY
        assert registry.build("pmep").telemetry is NULL_TELEMETRY


class TestSamplerBasics:
    def test_session_attaches_registry_builds(self):
        sampler = TelemetrySampler(interval_ps=1_000)
        with session(sampler):
            system = registry.build("vans")
            assert system.telemetry is sampler
            for i in range(50):
                system.read(i * 64, i * 100)
        assert len(sampler.timeline) > 0
        assert "imc.reads" in sampler.timeline.series
        counter = sampler.timeline.series["imc.reads"]
        assert counter.kind == "counter"
        assert counter.final == 50

    def test_sample_times_monotone_despite_out_of_order_completions(self):
        sampler = TelemetrySampler(interval_ps=1_000)
        with session(sampler):
            system = registry.build("vans")
            for i in range(100):
                system.read(i * 64, i * 100)
        times = sampler.timeline.sample_times_ps
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_run_clock_folds_across_fresh_systems(self):
        """Sweep harnesses rebuild per point; timelines concatenate."""
        sampler = TelemetrySampler(interval_ps=1_000)
        with session(sampler):
            first = registry.build("vans")
            for i in range(40):
                first.read(i * 64, i * 100)
            mid = sampler.timeline.end_ps if len(sampler.timeline) else 0
            second = registry.build("vans")  # clock restarts at 0
            for i in range(40):
                second.read(i * 64, i * 100)
        times = sampler.timeline.sample_times_ps
        assert times == sorted(times)
        assert times[-1] > mid  # second domain extended the run clock

    def test_finalize_samples_short_runs(self):
        """A run shorter than one interval still produces a timeline."""
        sampler = TelemetrySampler()  # default 100us interval
        with session(sampler):
            system = registry.build("vans")
            system.read(0, 0)
        assert len(sampler.timeline) == 1

    def test_gauge_error_recorded_not_fatal(self):
        sampler = TelemetrySampler(interval_ps=1_000)

        class Broken:
            def __init__(self):
                self.instrument = InstrumentBus()
                self.instrument.counter("ok").add(5)
                self.instrument.gauge("bad", lambda: 1 // 0)

        sampler.attach(Broken())
        sampler.tick(2_000)
        sampler.finalize()
        assert sampler.timeline.errors == ["bad"]
        assert sampler.timeline.series["ok"].final == 5

    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigError):
            TelemetrySampler(interval_ps=0)

    def test_histograms_become_count_and_stats(self):
        sampler = TelemetrySampler(interval_ps=1_000)

        class WithHist:
            def __init__(self):
                self.instrument = InstrumentBus()
                h = self.instrument.histogram("lat")
                for v in (10, 20, 30):
                    h.record(v)

        sampler.attach(WithHist())
        sampler.tick(2_000)
        timeline = sampler.timeline
        assert timeline.series["lat.count"].kind == "counter"
        assert timeline.series["lat.count"].final == 3
        assert timeline.series["lat.mean"].kind == "stat"
        assert timeline.series["lat.mean"].final == 20


class TestTimelineSerialization:
    def _sampled(self):
        sampler = TelemetrySampler(interval_ps=1_000)
        with session(sampler):
            system = registry.build("vans")
            for i in range(30):
                system.read(i * 64, i * 100)
        return sampler.timeline

    def test_round_trip(self):
        timeline = self._sampled()
        doc = json.loads(json.dumps(timeline.as_dict()))
        back = Timeline.from_dict(doc)
        assert back.as_dict() == timeline.as_dict()

    def test_series_views(self):
        timeline = self._sampled()
        series = timeline.series["imc.reads"]
        deltas = series.deltas()
        assert sum(deltas) == series.final
        assert len(series.rates_per_s()) == len(series)
        assert "imc.reads" in timeline.paths("counter")
        assert timeline.paths("gauge")  # station gauges present


class TestDeterminism:
    def test_serial_vs_workers_timelines_bit_identical(self):
        ids = ["fig1", "tables"]
        serial = run_all(Scale.SMOKE, ids=ids, telemetry=INTERVAL)
        parallel = run_all(Scale.SMOKE, ids=ids, workers=4,
                           telemetry=INTERVAL)
        for a, b in zip(serial, parallel):
            assert a.telemetry == b.telemetry
            assert a.telemetry["timeline"]["samples"] > 0

    def test_telemetry_has_zero_model_side_effects(self):
        """Sampling only reads: instrumentation is unchanged by it."""
        plain = run_experiment("fig1", Scale.SMOKE)
        sampled = run_experiment("fig1", Scale.SMOKE, telemetry=INTERVAL)
        for a, b in zip(plain, sampled):
            assert a.instrumentation == b.instrumentation
            assert a.metrics == b.metrics
            assert not a.telemetry and b.telemetry


class TestManifest:
    def test_round_trip_validates(self):
        manifest = run_manifest(seed=7, config={"suite": "smoke", "n": 3})
        back = json.loads(json.dumps(manifest))
        assert validate_manifest(back) == []
        assert back["seed"] == 7
        assert back["config"]["suite"] == "smoke"

    def test_config_hash_detects_tampering(self):
        manifest = run_manifest(config={"a": 1})
        manifest["config"]["a"] = 2
        assert any("config_hash" in p for p in validate_manifest(manifest))

    def test_wrong_schema_flagged(self):
        manifest = run_manifest()
        manifest["schema"] = "bogus/9"
        assert validate_manifest(manifest)


class TestExports:
    def _timelines(self):
        sampler = TelemetrySampler(interval_ps=1_000)
        with session(sampler):
            system = registry.build("vans")
            for i in range(30):
                system.read(i * 64, i * 100)
        return {"demo": sampler.timeline}

    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([5, 5, 5]) == "▁▁▁"
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        assert line[0] == "▁" and line[-1] == "█"

    def test_render_timeline_mentions_series(self):
        timelines = self._timelines()
        text = render_timeline(timelines["demo"])
        assert "samples" in text
        assert "imc.reads" in text
        filtered = render_timeline(timelines["demo"], match="no-such-path")
        assert "no matching series" in filtered

    def test_csv_long_form(self):
        buf = io.StringIO()
        rows = save_timelines_csv(self._timelines(), buf)
        lines = buf.getvalue().strip().splitlines()
        assert lines[0] == "experiment,path,kind,t_ps,value"
        assert len(lines) == rows + 1
        assert any(line.startswith("demo,imc.reads,counter,")
                   for line in lines[1:])

    def test_chrome_counter_tracks(self):
        trace = to_chrome_counters(self._timelines())
        phases = {e.get("ph") for e in trace["traceEvents"]}
        assert "C" in phases and "M" in phases
        counter = next(e for e in trace["traceEvents"] if e.get("ph") == "C")
        assert "value" in counter["args"]
        buf = io.StringIO()
        events = save_chrome_counters(self._timelines(), buf)
        assert events == len(json.loads(buf.getvalue())["traceEvents"])
