"""NVRAM DIMM pipeline: buffers, write combining, amplification."""

import pytest

from repro.common.units import KIB, MIB, NS
from repro.vans.config import DimmConfig
from repro.vans.dimm import NvramDimm


@pytest.fixture
def dimm():
    return NvramDimm(DimmConfig())


class TestReadPath:
    def test_rmw_hit_faster_than_miss(self, dimm):
        miss = dimm.read_line(0, 0)
        hit_start = miss + 1000
        hit = dimm.read_line(0, hit_start) - hit_start
        assert hit < miss

    def test_read_fills_256b_entry(self, dimm):
        dimm.read_line(0, 0)
        stats = dimm.stats.snapshot()
        assert stats["dimm.rmw_fill_bytes"] == 256
        # the sibling lines of the 256B block now hit
        t = 10**7
        before = dimm.stats.counter("dimm.rmw_hits").value
        dimm.read_line(64, t)
        assert dimm.stats.counter("dimm.rmw_hits").value == before + 1

    def test_ait_miss_fills_4k(self, dimm):
        dimm.read_line(0, 0)
        assert dimm.stats.snapshot()["dimm.ait_fill_bytes"] == 4096

    def test_ait_hit_after_page_fetch(self, dimm):
        dimm.read_line(0, 0)
        before = dimm.stats.counter("dimm.ait_hits").value
        dimm.read_line(1024, 10**7)  # same 4KB page, different 256B block
        assert dimm.stats.counter("dimm.ait_hits").value == before + 1

    def test_rmw_capacity_lru(self, dimm):
        nentries = dimm.config.rmw.entries
        now = 0
        for i in range(nentries + 1):
            now = dimm.read_line(i * 256, now)
        # block 0 was evicted: re-read misses
        before = dimm.stats.counter("dimm.rmw_misses").value
        dimm.read_line(0, now + 1000)
        assert dimm.stats.counter("dimm.rmw_misses").value == before + 1

    def test_read_amplification_property(self, dimm):
        now = 0
        for i in range(8):
            now = dimm.read_line(i * 4096, now)  # all distinct pages
        assert dimm.rmw_read_amplification == pytest.approx(4.0)
        assert dimm.ait_read_amplification == pytest.approx(64.0)


class TestWritePath:
    def test_sequential_lines_combine(self, dimm):
        now = 0
        for i in range(8):
            now = max(now, dimm.write_line(i * 64, now)) + 10 * NS
        dimm.flush(now)
        stats = dimm.stats.snapshot()
        assert stats["dimm.combined_write_ops"] == 2  # 8 lines -> 2 x 256B
        assert stats["dimm.partial_write_ops"] == 0

    def test_scattered_lines_trigger_rmw(self, dimm):
        now = 0
        for i in range(4):
            now = max(now, dimm.write_line(i * 4096, now)) + 10 * NS
        dimm.flush(now)
        assert dimm.stats.snapshot()["dimm.partial_write_ops"] == 4

    def test_write_through_reaches_media(self, dimm):
        now = dimm.write_line(0, 0)
        dimm.flush(now)
        assert dimm.media.writes >= 1

    def test_write_amplification_of_scattered_64b(self, dimm):
        now = 0
        for i in range(16):
            now = max(now, dimm.write_line(i * 4096, now)) + 10 * NS
        dimm.flush(now)
        # each 64B store drained as a 256B media write
        assert dimm.write_amplification == pytest.approx(4.0)

    def test_combining_window_expires(self, dimm):
        gap = dimm.config.lsq.combine_window_ps * 3
        now = dimm.write_line(0, 0)
        now = dimm.write_line(64, now + gap)  # same block, too late
        dimm.flush(now + gap)
        assert dimm.stats.snapshot()["dimm.partial_write_ops"] == 2

    def test_write_allocates_ait_tag(self, dimm):
        now = dimm.write_line(0, 0)
        done = dimm.flush(now)
        before = dimm.stats.counter("dimm.ait_hits").value
        dimm.read_line(1024, done + 1000)  # same page
        assert dimm.stats.counter("dimm.ait_hits").value == before + 1


class TestFence:
    def test_flush_drains_pending_combine(self, dimm):
        dimm.write_line(0, 0)
        done = dimm.flush(1000)
        assert done > 1000
        assert dimm.stats.snapshot()["dimm.combined_write_ops"] \
            + dimm.stats.snapshot()["dimm.partial_write_ops"] == 1

    def test_flush_idempotent_when_empty(self, dimm):
        assert dimm.flush(500) == 500


class TestWarmFill:
    def test_warm_fill_makes_reads_hit(self, dimm):
        dimm.warm_fill(0, 16 * KIB)
        dimm.read_line(0, 0)
        stats = dimm.stats.snapshot()
        assert stats["dimm.rmw_hits"] == 1
        assert stats["dimm.rmw_misses"] == 0

    def test_warm_fill_respects_capacity(self, dimm):
        dimm.warm_fill(0, 64 * MIB)
        assert len(dimm._ait_tags) <= dimm.config.ait.entries
        assert len(dimm._rmw_tags) <= dimm.config.rmw.entries

    def test_invalidate_buffers(self, dimm):
        dimm.warm_fill(0, 16 * KIB)
        dimm.invalidate_buffers()
        dimm.read_line(0, 0)
        assert dimm.stats.snapshot()["dimm.rmw_misses"] == 1


class TestTurnaround:
    def test_direction_switch_costs_extra(self):
        a = NvramDimm(DimmConfig())
        a.read_line(0, 0)
        t0 = 10**7
        read_after_read = a.read_line(4096, t0) - t0

        b = NvramDimm(DimmConfig())
        b.read_line(0, 0)
        b.write_line(8192, 10**6)
        read_after_write = b.read_line(4096, t0) - t0
        assert read_after_write > read_after_read
