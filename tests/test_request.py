"""Memory request type."""

from repro.engine.request import CACHE_LINE, Op, Request


def test_op_classification():
    assert Op.READ.is_read and not Op.READ.is_write
    assert Op.WRITE.is_write
    assert Op.WRITE_NT.is_write
    assert Op.CLWB.is_write
    assert not Op.FENCE.is_write and not Op.FENCE.is_read


def test_latency_property():
    req = Request(addr=0x1000, issue_ps=100, complete_ps=350)
    assert req.latency_ps == 250


def test_line_addr_alignment():
    req = Request(addr=0x1234)
    assert req.line_addr == 0x1234 - (0x1234 % CACHE_LINE)
    assert req.line_addr % CACHE_LINE == 0


def test_request_ids_unique():
    a, b = Request(addr=0), Request(addr=0)
    assert a.req_id != b.req_id


def test_annotate_lazy_dict():
    req = Request(addr=0)
    assert req.meta is None
    req.annotate("k", 1)
    assert req.meta == {"k": 1}
