"""CPU caches: geometry, LRU, write-back, hierarchy composition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.common.units import KIB
from repro.cpu.cache import Cache, CacheConfig, CacheHierarchy

SMALL = CacheConfig("T", 4 * KIB, 4, 2)  # 16 sets x 4 ways


def test_geometry():
    assert SMALL.nsets == 16


def test_invalid_geometry():
    with pytest.raises(ConfigError):
        CacheConfig("bad", 4 * KIB + 64, 4, 2)


def test_miss_then_hit():
    cache = Cache(SMALL)
    assert not cache.lookup(0, False)
    cache.fill(0)
    assert cache.lookup(0, False)
    assert cache.hits == 1 and cache.misses == 1


def test_lru_eviction_order():
    cache = Cache(SMALL)
    set_stride = SMALL.nsets * 64  # same-set addresses
    for i in range(4):
        cache.fill(i * set_stride)
    cache.lookup(0, False)          # refresh line 0
    cache.fill(4 * set_stride)      # evicts LRU = line 1
    assert cache.contains(0)
    assert not cache.contains(set_stride)


def test_dirty_eviction_returns_victim():
    cache = Cache(SMALL)
    set_stride = SMALL.nsets * 64
    cache.fill(0, dirty=True)
    for i in range(1, 4):
        cache.fill(i * set_stride)
    victim = cache.fill(4 * set_stride)
    assert victim == 0


def test_clean_eviction_returns_none():
    cache = Cache(SMALL)
    set_stride = SMALL.nsets * 64
    for i in range(5):
        assert cache.fill(i * set_stride) is None


def test_write_hit_marks_dirty():
    cache = Cache(SMALL)
    set_stride = SMALL.nsets * 64
    cache.fill(0)
    cache.lookup(0, True)  # write hit dirties the line
    for i in range(1, 4):
        cache.fill(i * set_stride)
    assert cache.fill(4 * set_stride) == 0


def test_invalidate():
    cache = Cache(SMALL)
    cache.fill(0)
    cache.invalidate(0)
    assert not cache.contains(0)


@settings(max_examples=40)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
def test_occupancy_never_exceeds_capacity(lines):
    cache = Cache(SMALL)
    for line in lines:
        addr = line * 64
        if not cache.lookup(addr, False):
            cache.fill(addr)
    resident = sum(len(s) for s in cache._sets)
    assert resident <= SMALL.capacity_bytes // 64
    for cset in cache._sets:
        assert len(cset) <= SMALL.ways


@given(st.lists(st.integers(0, 63), min_size=1, max_size=100))
def test_rereference_always_hits(lines):
    """Property: a line just filled or hit is resident (top of LRU)."""
    cache = Cache(SMALL)
    for line in lines:
        addr = line * 64
        if not cache.lookup(addr, False):
            cache.fill(addr)
        assert cache.contains(addr)


class TestHierarchy:
    def test_miss_propagates_to_mem(self):
        h = CacheHierarchy()
        level, cycles, victims = h.access(0, False)
        assert level == "mem"
        assert cycles == (h.l1.config.latency_cycles
                          + h.l2.config.latency_cycles
                          + h.l3.config.latency_cycles)
        assert victims == []

    def test_second_access_hits_l1(self):
        h = CacheHierarchy()
        h.access(0, False)
        level, cycles, _ = h.access(0, False)
        assert level == "l1"
        assert cycles == h.l1.config.latency_cycles

    def test_l1_eviction_falls_to_l2(self):
        h = CacheHierarchy()
        h.access(0, False)
        # evict line 0 from L1 (same-set fills) but it stays in L2
        set_stride = h.l1.config.nsets * 64
        for i in range(1, 9):
            h.access(i * set_stride, False)
        level, _, _ = h.access(0, False)
        assert level in ("l2", "l3")

    def test_dirty_l3_victims_surface(self):
        h = CacheHierarchy()
        h.access(0, True)  # dirty in L1
        # push it down and out: fill way past L3 associativity in one set
        stride = h.l3.config.nsets * 64
        victims = []
        for i in range(1, 40):
            _, _, v = h.access(i * stride, False)
            victims.extend(v)
        assert 0 in victims

    def test_miss_rate_accounting(self):
        h = CacheHierarchy()
        h.access(0, False)
        h.access(0, False)
        assert h.llc_misses == 1
        assert 0 < h.llc_miss_rate <= 1
