"""Full-system harness."""

import pytest

from repro.baselines.slow_dram import ramulator_ddr4
from repro.cpu import FullSystem
from repro.cpu.system import MemOp
from repro.vans import VansSystem


def simple_trace(n, stride=1 << 21):
    return [MemOp(nonmem=20, vaddr=(i * stride) % (1 << 31)) for i in range(n)]


def test_report_fields():
    system = FullSystem(ramulator_ddr4(), name="t")
    report = system.run(simple_trace(100))
    assert report.name == "t"
    assert report.instructions == 100 * 21
    assert report.ipc > 0
    assert 0 <= report.llc_miss_rate <= 1
    assert report.llc_mpki >= 0
    assert report.elapsed_ps > 0


def test_warmup_excluded_from_stats():
    cold = FullSystem(ramulator_ddr4()).run(simple_trace(200))
    warm = FullSystem(ramulator_ddr4()).run(simple_trace(200), warmup_ops=100)
    assert warm.instructions < cold.instructions


def test_nvram_backend_slower_than_dram():
    trace = simple_trace(300)
    dram = FullSystem(ramulator_ddr4(), name="dram").run(list(trace))
    nvram = FullSystem(VansSystem(), name="nvram").run(list(trace))
    assert nvram.elapsed_ps > dram.elapsed_ps


def test_speedup_metric():
    a = FullSystem(ramulator_ddr4()).run(simple_trace(100))
    b = FullSystem(VansSystem()).run(simple_trace(100))
    assert b.speedup_over(a) == pytest.approx(a.elapsed_ps / b.elapsed_ps)


def test_backend_counters_in_report():
    system = FullSystem(VansSystem())
    report = system.run(simple_trace(50))
    assert report.backend_counters.get("dimm.reads", 0) > 0


def test_phase_metrics_propagate():
    trace = [MemOp(nonmem=5, vaddr=i * (1 << 21), dependent=True,
                   phase="read") for i in range(40)]
    trace += [MemOp(nonmem=5, vaddr=0, phase="rest") for _ in range(40)]
    report = FullSystem(VansSystem()).run(trace)
    assert report.phase_cpi["read"] > report.phase_cpi["rest"]
    assert report.phase_llc_misses.get("read", 0) > 0
