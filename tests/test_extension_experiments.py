"""Energy and NUMA extension experiments."""

import pytest

from repro.experiments import energy_study, numa_study
from repro.experiments.common import Scale


class TestEnergyStudy:
    @pytest.fixture(scope="class")
    def rw(self):
        return energy_study.run_read_vs_write(Scale.SMOKE)

    def test_writes_cost_more_than_reads(self, rw):
        by_name = {row[0]: row[1] for row in rw.rows}
        assert by_name["sequential-write"] > by_name["sequential-read"]
        assert by_name["random-write"] > by_name["random-read"]

    def test_random_write_is_worst_case(self, rw):
        assert rw.metrics["random_write_over_seq_read"] > 10

    def test_lazy_cache_saves_energy(self):
        result = energy_study.run_lazy_cache_energy(Scale.SMOKE)
        assert result.metrics["energy_saving"] > 0.3
        # migration energy eliminated entirely
        assert result.rows[1][3] < result.rows[0][3]


class TestNumaStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return numa_study.run(Scale.SMOKE)

    def test_remote_always_slower(self, result):
        for row in result.rows:
            assert row[3] > row[2]

    def test_added_latency_matches_hops(self, result):
        # two hops plus link occupancy: roughly 140-200ns added
        assert 100 < result.metrics["nvram_added_ns"] < 300

    def test_relative_penalty_larger_on_dram(self, result):
        assert result.metrics["dram_remote_penalty"] > \
            result.metrics["nvram_remote_penalty"]
