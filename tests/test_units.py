"""Unit conversions and size/time helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError, ProtocolError, ReproError
from repro.common.units import (
    GIB,
    KIB,
    MIB,
    MS,
    NS,
    SEC,
    US,
    align_down,
    align_up,
    freq_mhz_to_period_ps,
    is_power_of_two,
    ns_to_ps,
    pretty_size,
    pretty_time,
    ps_to_ns,
    ps_to_us,
)


def test_size_constants_chain():
    assert KIB == 1024
    assert MIB == 1024 * KIB
    assert GIB == 1024 * MIB


def test_time_constants_chain():
    assert US == 1000 * NS
    assert MS == 1000 * US
    assert SEC == 1000 * MS


def test_ns_ps_roundtrip():
    assert ns_to_ps(1.5) == 1500
    assert ps_to_ns(1500) == 1.5
    assert ps_to_us(2_500_000) == 2.5


def test_freq_conversion_ddr4():
    # the DDR4-2666 clock runs at 1333MHz -> tCK 750ps
    assert freq_mhz_to_period_ps(1333.3333) == 750


def test_freq_conversion_cpu():
    assert freq_mhz_to_period_ps(2200) == 455


def test_align_down_up():
    assert align_down(1000, 256) == 768
    assert align_up(1000, 256) == 1024
    assert align_down(1024, 256) == 1024
    assert align_up(1024, 256) == 1024


@given(st.integers(min_value=0, max_value=1 << 48),
       st.sampled_from([64, 256, 4096, 65536]))
def test_align_properties(value, alignment):
    down = align_down(value, alignment)
    up = align_up(value, alignment)
    assert down <= value <= up
    assert down % alignment == 0
    assert up % alignment == 0
    assert up - down in (0, alignment)


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(4096)
    assert not is_power_of_two(0)
    assert not is_power_of_two(3)
    assert not is_power_of_two(-8)


def test_pretty_size():
    assert pretty_size(512) == "512"
    assert pretty_size(16 * KIB) == "16K"
    assert pretty_size(4 * MIB) == "4M"
    assert pretty_size(2 * GIB) == "2G"


def test_pretty_time():
    assert pretty_time(1500) == "1.5ns"
    assert pretty_time(2 * US) == "2.000us"
    assert pretty_time(3 * MS) == "3.000ms"


def test_error_hierarchy():
    assert issubclass(ConfigError, ReproError)
    assert issubclass(ProtocolError, ReproError)
