"""LENS microbenchmarks driving VANS."""

import pytest

from repro.common.units import KIB, MIB
from repro.lens.microbench.overwrite import Overwrite, OverwriteResult
from repro.lens.microbench.pointer_chasing import PointerChasing
from repro.lens.microbench.stride import Stride
from repro.vans import VansConfig, VansSystem


class TestPointerChasing:
    def test_block_order_covers_region(self):
        pc = PointerChasing(seed=0, max_lines_per_point=10_000)
        order = pc._block_order(4 * KIB, 64, "x")
        assert sorted(order) == [i * 64 for i in range(64)]

    def test_block_order_samples_large_regions(self):
        pc = PointerChasing(seed=0, max_lines_per_point=100)
        order = pc._block_order(64 * MIB, 64, "x")
        assert len(order) == 100
        assert len(set(order)) == 100

    def test_order_is_shuffled(self):
        pc = PointerChasing(seed=0)
        order = pc._block_order(16 * KIB, 64, "x")
        assert order != sorted(order)

    def test_read_latency_tiers(self, vans_factory):
        pc = PointerChasing(seed=1)
        small = pc.read_latency_ns(vans_factory(), 4 * KIB)
        large = pc.read_latency_ns(vans_factory(), 1 * MIB)
        assert large > 1.5 * small

    def test_write_latency_tiers(self, vans_factory):
        pc = PointerChasing(seed=1)
        small = pc.write_latency_ns(vans_factory(), 256)
        large = pc.write_latency_ns(vans_factory(), 64 * KIB)
        assert large > 3 * small

    def test_latency_sweep_shapes(self, vans_factory):
        pc = PointerChasing(seed=1)
        sweep = pc.latency_sweep(vans_factory, [1 * KIB, 64 * KIB], op="read")
        assert sweep.xs == [1 * KIB, 64 * KIB]
        assert sweep.values[1] > sweep.values[0]

    def test_raw_exceeds_rpw_small_region(self, vans_factory):
        pc = PointerChasing(seed=2)
        raw, rpw = pc.raw_sweep(vans_factory, [1 * KIB])
        assert raw.values[0] > 1.5 * rpw.values[0]


class TestOverwrite:
    def test_result_statistics(self):
        res = OverwriteResult(256, [1.0] * 99 + [100.0])
        assert res.median_ns == 1.0
        assert res.tail_indices() == [99]
        assert res.tail_ratio_permille() == pytest.approx(10.0)
        assert res.tail_magnitude_ns() == 100.0

    def test_tail_interval(self):
        res = OverwriteResult(256, [1.0] * 100)
        res.iteration_ns[10] = 50.0
        res.iteration_ns[40] = 50.0
        res.iteration_ns[70] = 50.0
        assert res.tail_interval() == 30.0

    def test_run_produces_one_time_per_256b(self, vans):
        ow = Overwrite()
        res = ow.run(vans, region_bytes=512, iterations=5)
        assert len(res.iteration_ns) == 10  # 2 chunks x 5 iterations

    def test_migration_tail_detected(self, fast_wear_config):
        from repro.vans import VansSystem
        ow = Overwrite()
        threshold = fast_wear_config.dimm.wear.migrate_threshold
        res = ow.run(VansSystem(fast_wear_config), region_bytes=256,
                     iterations=threshold * 2)
        tails = res.tail_indices()
        assert tails
        assert abs(tails[0] - (threshold - 1)) <= 1


class TestStride:
    def test_read_bandwidth_positive(self, vans):
        bw = Stride().read_bandwidth_gbs(vans, 256 * KIB)
        assert 0.1 < bw < 50

    def test_window_increases_bandwidth(self, vans_factory):
        narrow = Stride(read_window=1).read_bandwidth_gbs(
            vans_factory(), 256 * KIB)
        wide = Stride(read_window=16).read_bandwidth_gbs(
            vans_factory(), 256 * KIB)
        assert wide > narrow

    def test_nt_beats_rfo_on_vans(self, vans_factory):
        stride = Stride()
        nt = stride.write_bandwidth_gbs(vans_factory(), 128 * KIB, mode="nt")
        rfo = stride.write_bandwidth_gbs(vans_factory(), 128 * KIB, mode="rfo")
        assert nt > rfo

    def test_sequential_write_times_monotone(self, vans_factory):
        series = Stride().sequential_write_times_us(
            vans_factory, [1 * KIB, 2 * KIB, 4 * KIB])
        assert series.values == sorted(series.values)

    def test_strided_write_times(self, vans_factory):
        series = Stride().strided_write_times_us(
            vans_factory, 8 * KIB, [64, 256])
        assert len(series) == 2
        assert all(v > 0 for v in series.values)
