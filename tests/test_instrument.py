"""The instrumentation bus."""

from repro.instrument import (
    NULL_BUS,
    Collection,
    InstrumentBus,
    announce,
)


class TestNullBus:
    def test_everything_is_a_noop(self):
        NULL_BUS.counter("a").add()
        NULL_BUS.histogram("b").record(5)
        NULL_BUS.gauge("c", lambda: 1)
        with NULL_BUS.span("d"):
            pass
        assert NULL_BUS.snapshot() == {}

    def test_scope_returns_itself(self):
        assert NULL_BUS.scope("x") is NULL_BUS


class TestInstrumentBus:
    def test_counters_and_snapshot(self):
        bus = InstrumentBus()
        bus.counter("reads").add()
        bus.counter("reads").add(2)
        assert bus.snapshot()["reads"] == 3

    def test_counter_identity_per_path(self):
        bus = InstrumentBus()
        assert bus.counter("x") is bus.counter("x")

    def test_gauges_pull_at_snapshot_time(self):
        bus = InstrumentBus()
        state = {"v": 1}
        bus.gauge("depth", lambda: state["v"])
        state["v"] = 7
        assert bus.snapshot()["depth"] == 7

    def test_histogram_expands_to_count_mean_max(self):
        bus = InstrumentBus()
        bus.histogram("lat").record(10)
        bus.histogram("lat").record(30)
        snap = bus.snapshot()
        assert snap["lat.count"] == 2
        assert snap["lat.mean"] == 20
        assert snap["lat.max"] == 30

    def test_histogram_snapshot_keys_are_uniform(self):
        """Every histogram expands to the same self-describing key set."""
        bus = InstrumentBus()
        bus.histogram("lat").record(10)
        bus.histogram("empty")  # registered, never recorded
        snap = bus.snapshot()
        for name in ("lat", "empty"):
            for key in ("count", "sum", "min", "max", "mean", "p50", "p99"):
                assert f"{name}.{key}" in snap, f"{name}.{key}"
        assert snap["empty.count"] == 0
        assert snap["lat.p50"] == 10
        assert snap["lat.p99"] == 10

    def test_failing_gauge_does_not_abort_snapshot(self):
        """A raising gauge is reported under 'errors'; the rest survives."""
        bus = InstrumentBus()
        bus.counter("ok.count").add(3)
        bus.gauge("ok.depth", lambda: 7)
        bus.gauge("bad.depth", lambda: 1 // 0)
        snap = bus.snapshot()
        assert snap["ok.count"] == 3
        assert snap["ok.depth"] == 7
        assert "bad.depth" not in snap
        assert snap["errors"] == ["bad.depth"]

    def test_failing_gauge_errors_rescope(self):
        """ScopedBus.snapshot re-scopes error paths like value paths."""
        bus = InstrumentBus()
        scoped = bus.scope("dimm")
        scoped.gauge("bad", lambda: 1 // 0)
        bus.gauge("other.bad", lambda: 1 // 0)
        assert bus.snapshot()["errors"] == ["dimm.bad", "other.bad"]
        assert scoped.snapshot()["errors"] == ["bad"]


class TestScopedBus:
    def test_scope_prefixes_paths(self):
        bus = InstrumentBus()
        bus.scope("imc").scope("dimm0").counter("hits").add()
        assert bus.snapshot()["imc.dimm0.hits"] == 1

    def test_scoped_snapshot_is_scope_relative(self):
        bus = InstrumentBus()
        imc = bus.scope("imc")
        imc.counter("hits").add(4)
        bus.counter("other").add()
        assert imc.snapshot() == {"hits": 4}


class TestCollection:
    class FakeSystem:
        def __init__(self, snap):
            self._snap = snap

        def instrument_snapshot(self):
            return self._snap

    def test_announce_outside_collection_is_noop(self):
        announce(object())  # must not raise

    def test_merged_sums_numeric_paths(self):
        with Collection() as col:
            announce(self.FakeSystem({"a": 1, "b": 2.5}))
            announce(self.FakeSystem({"a": 10, "c": "text"}))
        merged = col.merged()
        assert merged["a"] == 11
        assert merged["b"] == 2.5
        assert "c" not in merged
        assert merged["systems"] == 2

    def test_nested_collections_innermost_wins(self):
        with Collection() as outer:
            with Collection() as inner:
                announce(self.FakeSystem({"x": 1}))
        assert len(inner) == 1
        assert len(outer) == 0

    def test_merged_is_live_while_active(self):
        snap = {"a": 1}
        with Collection() as col:
            announce(self.FakeSystem(snap))
            assert col.merged()["a"] == 1
            snap["a"] = 5
            assert col.merged()["a"] == 5

    def test_merged_freezes_at_exit(self):
        """Gauge activity after the collection closes must not leak back."""
        snap = {"a": 1}
        with Collection() as col:
            announce(self.FakeSystem(snap))
        snap["a"] = 99  # system keeps running after the experiment
        assert col.merged()["a"] == 1

    def test_frozen_snapshot_is_a_copy(self):
        with Collection() as col:
            announce(self.FakeSystem({"a": 1}))
        col.merged()["a"] = 42
        assert col.merged()["a"] == 1

    def test_frozen_snapshot_with_real_system(self):
        """End-to-end: a registry system driven after exit stays frozen."""
        from repro import registry

        with Collection() as c1:
            system = registry.build("vans")
            system.read(0, now=0)
        snap1 = c1.merged()
        assert snap1["imc.reads"] == 1
        # Keep exercising the same system after c1 closed.
        for i in range(1, 8):
            system.read(i * 64, now=i * 1000)
        assert c1.merged() == snap1
        # A second collection sees only its own systems.
        with Collection() as c2:
            other = registry.build("ramulator-ddr4")
            other.read(0, now=0)
        assert not any(path.startswith("imc.") for path in c2.merged())
