"""Address-mapping prober: recovering the DIMM-select bits."""

import pytest

from repro.common.units import KIB
from repro.lens.probers.mapping import MappingProber
from repro.vans import VansConfig, VansSystem


def test_finds_4k_interleave_bits():
    prober = MappingProber(
        lambda: VansSystem(VansConfig().with_dimms(6)))
    report = prober.run()
    assert report.interleave_granularity == 4 * KIB
    # bits inside a chunk stay on one DIMM
    assert 10 not in report.dimm_select_bits
    assert 12 in report.dimm_select_bits


def test_non_interleaved_finds_nothing():
    prober = MappingProber(lambda: VansSystem())
    report = prober.run()
    assert report.dimm_select_bits == []
    assert report.interleave_granularity == 0


def test_coarser_interleave_detected():
    cfg = VansConfig(ndimms=4, interleaved=True, interleave_bytes=64 * KIB)
    prober = MappingProber(lambda: VansSystem(cfg), max_bit=20)
    report = prober.run()
    assert report.interleave_granularity == 64 * KIB


def test_speedups_reported_per_bit():
    prober = MappingProber(
        lambda: VansSystem(VansConfig().with_dimms(2)), min_bit=10,
        max_bit=14)
    report = prober.run()
    assert set(report.bit_speedup) == {10, 11, 12, 13, 14}
    assert report.bit_speedup[12] > report.bit_speedup[10]
