"""The unified target registry."""

import pytest

from repro import registry
from repro.common.errors import ReproError, UnknownTargetError
from repro.instrument import Collection
from repro.vans.config import VansConfig
from repro.vans.system import VansSystem


class TestSpecs:
    def test_every_named_target_builds(self):
        for name in registry.target_names():
            obj = registry.build(name)
            assert obj is not None, name

    def test_every_system_target_serves_reads(self):
        for name in registry.target_names(systems_only=True):
            system = registry.build(name)
            assert system.read(0, 0) > 0, name

    def test_unknown_target_raises_typed_error(self):
        with pytest.raises(UnknownTargetError) as exc_info:
            registry.build("no-such-system")
        assert isinstance(exc_info.value, ReproError)
        assert "vans" in str(exc_info.value)

    def test_factory_validates_name_eagerly(self):
        with pytest.raises(UnknownTargetError):
            registry.factory("no-such-system")

    def test_categories(self):
        assert "vans" in registry.target_names(category="vans")
        assert "optane-ref" not in registry.target_names(systems_only=True)


class TestVansOverrides:
    def test_ndimms_override_matches_with_dimms(self):
        system = registry.build("vans-6dimm")
        assert system.config == VansConfig().with_dimms(6)

    def test_lazy_cache_override(self):
        system = registry.build("vans", lazy_cache=True)
        assert system.config.dimm.lazy_cache

    def test_nested_overrides(self):
        system = registry.build(
            "vans", migrate_threshold=123, combine_window_ps=0,
            engine_holds_partial=False)
        assert system.config.dimm.wear.migrate_threshold == 123
        assert system.config.dimm.lsq.combine_window_ps == 0
        assert not system.config.dimm.timing.engine_holds_partial

    def test_base_config_passthrough(self):
        cfg = VansConfig().with_lazy_cache(True)
        system = registry.build("vans", config=cfg, ndimms=2)
        assert system.config.dimm.lazy_cache
        assert system.config.ndimms == 2

    def test_baseline_kwargs_passthrough(self):
        system = registry.build("ramulator-ddr4", frontend_ps=30_000)
        assert system.frontend_ps == 30_000


class TestInstrumentation:
    def test_built_vans_has_live_bus(self):
        system = registry.build("vans")
        system.read(0, 0)
        snap = system.instrument_snapshot()
        assert any(".media_port." in k for k in snap)

    def test_instrument_opt_out(self):
        system = registry.build("vans", instrument=False)
        system.read(0, 0)
        snap = system.instrument_snapshot()
        # stats counters still present, bus gauges absent
        assert "dimm.rmw_misses" in snap
        assert not any(".media_port." in k for k in snap)

    def test_plain_construction_stays_uninstrumented(self):
        system = VansSystem()
        system.read(0, 0)
        assert not any(".media_port." in k
                       for k in system.instrument_snapshot())

    def test_collection_gathers_registry_builds(self):
        with Collection() as col:
            a = registry.build("vans")
            b = registry.build("ramulator-ddr4")
            a.read(0, 0)
            b.read(0, 0)
            merged = col.merged()
        assert merged["systems"] == 2
        assert merged["dimm.rmw_misses"] >= 1
        assert merged["slowdram.reads"] == 1
