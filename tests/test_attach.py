"""Event-driven attach interface."""

import pytest

from repro.common.errors import SimulationError
from repro.engine.event import Engine
from repro.engine.request import Op, Request
from repro.vans import VansSystem
from repro.vans.attach import AttachedMemory


@pytest.fixture
def port():
    return AttachedMemory(Engine(), VansSystem(), max_outstanding=4)


def test_callback_fires_at_completion(port):
    done = []
    req = Request(addr=0x100, op=Op.READ, issue_ps=0)
    assert port.send(req, lambda r: done.append(r))
    assert port.outstanding == 1
    port.engine.run()
    assert done == [req]
    assert port.engine.now == req.complete_ps
    assert port.outstanding == 0


def test_writes_complete_at_accept(port):
    req = Request(addr=0x100, op=Op.WRITE_NT, issue_ps=0)
    port.send(req)
    port.engine.run()
    assert req.accept_ps == req.complete_ps


def test_backpressure(port):
    for i in range(4):
        assert port.send(Request(addr=i * 4096, op=Op.READ, issue_ps=0))
    assert not port.can_accept()
    assert not port.send(Request(addr=0, op=Op.READ, issue_ps=0))
    assert port.stats.snapshot()["attach.rejected"] == 1
    port.engine.run()
    assert port.can_accept()


def test_ordering_of_completions(port):
    order = []
    # a hit (fast) issued after a miss (slow) still completes in time order
    miss = Request(addr=0x100, op=Op.READ, issue_ps=0)
    port.send(miss, lambda r: order.append("miss"))
    port.engine.run()
    hit = Request(addr=0x100, op=Op.READ, issue_ps=port.engine.now)
    port.send(hit, lambda r: order.append("hit"))
    port.engine.run()
    assert order == ["miss", "hit"]


def test_fence_helper(port):
    port.send(Request(addr=0, op=Op.WRITE_NT, issue_ps=0))
    port.engine.run()
    fired = []
    port.send_fence(on_complete=lambda r: fired.append(r.complete_ps))
    port.engine.run()
    assert fired and fired[0] >= 0


def test_rejects_past_issue(port):
    port.engine.advance(1000)
    with pytest.raises(SimulationError):
        port.send(Request(addr=0, op=Op.READ, issue_ps=10))


def test_latency_stats(port):
    port.send(Request(addr=0, op=Op.READ, issue_ps=0))
    port.engine.run()
    assert port.mean_latency_ps > 0
