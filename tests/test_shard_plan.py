"""DIMM → shard assignment: balance, contiguity, validation."""

import pytest

from repro.common.errors import ConfigError
from repro.shard import default_shards, shard_session, validate_shards
from repro.shard.plan import ShardPlan


def test_balanced_contiguous_blocks():
    plan = ShardPlan.for_target(ndimms=6, shards=4)
    assert plan.effective == 4
    widths = [len(plan.owned(s)) for s in range(plan.effective)]
    assert widths == [2, 2, 1, 1]
    # contiguous: each shard's DIMMs form a run
    for shard in range(plan.effective):
        owned = plan.owned(shard)
        assert list(owned) == list(range(owned[0], owned[0] + len(owned)))


def test_every_dimm_owned_exactly_once():
    for ndimms in range(1, 9):
        for shards in range(1, 9):
            plan = ShardPlan.for_target(ndimms, shards)
            seen = [d for s in range(plan.effective) for d in plan.owned(s)]
            assert sorted(seen) == list(range(ndimms))
            for dimm in range(ndimms):
                assert dimm in plan.owned(plan.shard_of(dimm))


def test_effective_clamped_to_dimm_population():
    plan = ShardPlan.for_target(ndimms=2, shards=8)
    assert plan.requested == 8
    assert plan.effective == 2


def test_as_dict_round_trip():
    plan = ShardPlan.for_target(ndimms=4, shards=2)
    doc = plan.as_dict()
    assert doc == {"ndimms": 4, "requested": 2, "effective": 2,
                   "assignment": [0, 0, 1, 1]}


def test_validate_shards_rejects_junk():
    with pytest.raises(ConfigError):
        validate_shards(0)
    with pytest.raises(ConfigError):
        validate_shards(-3)
    with pytest.raises(ConfigError):
        validate_shards("many")
    with pytest.raises(ConfigError):
        validate_shards(None)
    assert validate_shards("4") == 4


def test_bad_ndimms_rejected():
    with pytest.raises(ConfigError):
        ShardPlan.for_target(ndimms=0, shards=2)


def test_shard_session_scopes_the_default():
    assert default_shards() == 1
    with shard_session(4):
        assert default_shards() == 4
        with shard_session(2):
            assert default_shards() == 2
        assert default_shards() == 4
    assert default_shards() == 1


def test_shard_session_validates():
    with pytest.raises(ConfigError):
        with shard_session(0):
            pass
    assert default_shards() == 1
