"""Memory Mode: DRAM as a direct-mapped cache over NVRAM."""

import pytest

from repro.common.units import MIB
from repro.vans import MemoryModeSystem, VansConfig


@pytest.fixture
def memmode():
    return MemoryModeSystem(VansConfig(), dram_capacity=4 * MIB)


def test_first_access_misses_then_hits(memmode):
    miss_done = memmode.read(0, 0)
    t = miss_done + 1000
    hit_done = memmode.read(0, t) - t
    assert hit_done < miss_done
    assert memmode._c_hits.value == 1
    assert memmode._c_misses.value == 1


def test_write_allocates_and_dirties(memmode):
    memmode.write(0, 0)
    assert memmode._c_misses.value == 1
    # conflicting line (same set) evicts the dirty line -> NVRAM write
    conflict = 4 * MIB
    memmode.write(conflict, 10**7)
    assert memmode._c_writebacks.value == 1


def test_clean_eviction_no_writeback(memmode):
    memmode.read(0, 0)
    memmode.read(4 * MIB, 10**7)
    assert memmode._c_writebacks.value == 0


def test_hit_rate_property(memmode):
    memmode.read(0, 0)
    memmode.read(0, 10**7)
    memmode.read(0, 2 * 10**7)
    assert memmode.hit_rate == pytest.approx(2 / 3)


def test_fence_is_noop(memmode):
    """Memory Mode provides no persistence; fences order nothing."""
    memmode.write(0, 0)
    assert memmode.fence(123) == 123


def test_hits_are_dram_speed(memmode):
    memmode.read(0, 0)
    t = 10**7
    hit = memmode.read(0, t) - t
    # DRAM hit well under any NVRAM tier
    assert hit < 60_000


def test_reset_state(memmode):
    memmode.read(0, 0)
    memmode.reset_state()
    memmode.read(0, 10**7)
    assert memmode._c_misses.value == 2
