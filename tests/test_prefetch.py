"""Prefetcher-noise model and its effect on LENS probing."""

import pytest

from repro.common.units import KIB, MIB
from repro.lens.analysis import find_inflections
from repro.lens.microbench.pointer_chasing import PointerChasing
from repro.lens.prefetch import PrefetchingTarget
from repro.vans import VansSystem


def test_sequential_stream_hits_prefetch_buffer():
    target = PrefetchingTarget(VansSystem())
    now = 0
    for i in range(32):
        now = target.read(i * 64, now)
    assert target.stats.snapshot()["prefetch.hits"] > 20


def test_random_reads_rarely_hit():
    from repro.common.rng import make_rng
    rng = make_rng(1, "pf")
    target = PrefetchingTarget(VansSystem())
    now = 0
    for _ in range(64):
        now = target.read(rng.randrange(1 << 20) // 64 * 64, now)
    stats = target.stats.snapshot()
    assert stats["prefetch.hits"] < stats["prefetch.issued"] / 4


def test_prefetch_buffer_bounded():
    target = PrefetchingTarget(VansSystem(), buffer_lines=8)
    now = 0
    for i in range(100):
        now = target.read(i * 256, now)
    assert len(target._buffer) <= 8


def test_writes_pass_through():
    target = PrefetchingTarget(VansSystem())
    accept = target.write(0, 0)
    assert accept >= 0
    assert target.stats.snapshot()["prefetch.issued"] == 0


def test_prefetchers_distort_lens_probing():
    """The paper's methodological point (Section III-B): with hardware
    prefetchers enabled, the latency curves LENS decodes are polluted —
    the clean two-inflection signature degrades."""
    regions = [1 * KIB, 4 * KIB, 16 * KIB, 32 * KIB, 64 * KIB,
               256 * KIB, 1 * MIB, 8 * MIB, 16 * MIB, 32 * MIB, 64 * MIB]
    pc = PointerChasing(seed=17)

    clean = pc.latency_sweep(lambda: VansSystem(), regions, op="read")
    noisy = pc.latency_sweep(
        lambda: PrefetchingTarget(VansSystem(), degree=4), regions,
        op="read")

    assert find_inflections(clean)[:2] == [16 * KIB, 16 * MIB]
    # the prefetched runs flatten/shift the curve: the detected set is
    # no longer the clean pair
    assert find_inflections(noisy) != find_inflections(clean)
