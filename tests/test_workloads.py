"""Workload generators: zipf, SPEC calibration, cloud patterns."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.common.units import MIB
from repro.cpu.system import MemOp
from repro.workloads import (
    CLOUD_WORKLOADS,
    SPEC_WORKLOADS,
    ZipfSampler,
    fio_write_trace,
    hashmap_trace,
    linkedlist_trace,
    redis_trace,
    spec_trace,
    tpcc_trace,
    ycsb_trace,
)
from repro.workloads.spec import spec_workload


class TestZipf:
    def test_rank_zero_most_likely(self):
        zipf = ZipfSampler(1000, theta=0.99, seed=1)
        keys = zipf.sample_many(20000)
        counts = {}
        for k in keys:
            counts[int(k)] = counts.get(int(k), 0) + 1
        assert max(counts, key=counts.get) == 0

    def test_probability_sums_to_one(self):
        zipf = ZipfSampler(50, theta=0.9)
        total = sum(zipf.probability(i) for i in range(50))
        assert total == pytest.approx(1.0)

    def test_theta_zero_uniform(self):
        zipf = ZipfSampler(10, theta=0.0)
        probs = [zipf.probability(i) for i in range(10)]
        assert all(p == pytest.approx(0.1) for p in probs)

    def test_determinism(self):
        a = ZipfSampler(100, seed=3).sample_many(50)
        b = ZipfSampler(100, seed=3).sample_many(50)
        assert list(a) == list(b)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            ZipfSampler(0)
        with pytest.raises(ConfigError):
            ZipfSampler(10, theta=-1)

    @given(st.integers(1, 500), st.floats(0, 2))
    def test_samples_in_range(self, n, theta):
        zipf = ZipfSampler(n, theta=theta, seed=0)
        assert all(0 <= k < n for k in zipf.sample_many(20))


class TestSpec:
    def test_thirteen_workloads(self):
        assert len(SPEC_WORKLOADS) == 13

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            spec_workload("quake")

    def test_trace_length_and_types(self):
        ops = list(spec_trace("gcc", 500))
        assert len(ops) == 500
        assert all(isinstance(op, MemOp) for op in ops)

    def test_determinism(self):
        a = [(o.vaddr, o.is_write) for o in spec_trace("mcf", 200, seed=7)]
        b = [(o.vaddr, o.is_write) for o in spec_trace("mcf", 200, seed=7)]
        assert a == b

    def test_footprint_respected(self):
        wl = spec_workload("sjeng")
        ops = list(spec_trace("sjeng", 5000))
        assert max(op.vaddr for op in ops) < wl.footprint_bytes + 2 * 256 * 1024

    def test_memory_intensity_ordering(self):
        """mcf touches cold memory far more often than omnetpp."""
        def cold_ops(name):
            return sum(1 for op in spec_trace(name, 8000)
                       if op.vaddr >= 256 * 1024)
        assert cold_ops("mcf") > 3 * cold_ops("omnetpp")

    def test_write_fraction_reasonable(self):
        ops = list(spec_trace("lbm", 5000))
        frac = sum(op.is_write for op in ops) / len(ops)
        assert 0.3 < frac < 0.6


class TestCloud:
    def test_registry_has_six_workloads(self):
        assert set(CLOUD_WORKLOADS) == {"fio-write", "ycsb", "tpcc",
                                        "hashmap", "redis", "linkedlist"}

    @pytest.mark.parametrize("name", sorted(CLOUD_WORKLOADS))
    def test_generators_produce_memops(self, name):
        ops = list(CLOUD_WORKLOADS[name](300))
        assert len(ops) >= 300
        assert all(isinstance(op, MemOp) for op in ops)

    def test_fio_is_sequential_writes(self):
        ops = list(fio_write_trace(200))
        assert all(op.is_write and op.persistent for op in ops)
        addrs = [op.vaddr for op in ops[:64]]
        assert addrs == sorted(addrs)

    def test_linkedlist_all_dependent(self):
        ops = list(linkedlist_trace(100))
        assert all(op.dependent for op in ops)

    def test_linkedlist_pointers_consistent(self):
        """next_vaddr of hop i is the address of hop i+1 (with mkpt)."""
        ops = list(linkedlist_trace(50, mkpt=True))
        for a, b in zip(ops, ops[1:]):
            assert a.next_vaddr == b.vaddr

    def test_linkedlist_ring_repeats(self):
        ops = list(linkedlist_trace(300, nnodes=100))
        assert ops[0].vaddr == ops[100].vaddr == ops[200].vaddr

    def test_mkpt_only_when_requested(self):
        assert not any(op.mkpt for op in linkedlist_trace(50, mkpt=False))
        assert all(op.mkpt for op in linkedlist_trace(50, mkpt=True))

    def test_ycsb_concentrates_writes(self):
        ops = [op for op in ycsb_trace(5000) if op.is_write]
        counts = {}
        for op in ops:
            counts[op.vaddr] = counts.get(op.vaddr, 0) + 1
        top = sorted(counts.values(), reverse=True)
        assert top[0] > 20 * (sum(top) / len(top))

    def test_ycsb_writes_are_persistent(self):
        assert all(op.persistent for op in ycsb_trace(500) if op.is_write)

    def test_redis_phases(self):
        ops = list(redis_trace(500))
        phases = {op.phase for op in ops}
        assert phases == {"read", "rest"}
        reads = [op for op in ops if op.phase == "read"]
        assert all(op.dependent for op in reads)

    def test_redis_chains_stable(self):
        """The same key always resolves to the same chain (persistence)."""
        a = [op.vaddr for op in redis_trace(400, seed=9)]
        b = [op.vaddr for op in redis_trace(400, seed=9)]
        assert a == b

    def test_tpcc_mixed_rw(self):
        ops = list(tpcc_trace(700))
        assert any(op.is_write for op in ops)
        assert any(op.dependent for op in ops)

    def test_hashmap_triples(self):
        ops = list(hashmap_trace(300))
        writes = [op for op in ops if op.is_write]
        assert writes and all(op.persistent for op in writes)
