"""``repro-shard`` CLI and the shard kernel-bench cases."""

import json

import pytest

from repro.tools import shard_cli


OVR = ["--override", "ndimms=4", "--override", "interleaved=true"]


def test_run_prints_document(capsys):
    code = shard_cli.main(["run", "--requests", "600", "--shards", "2",
                           "--fork", "off", *OVR])
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.shard/1"
    assert doc["ops"] == 600
    assert doc["plan"]["effective"] == 2


def test_identity_passes_on_vans(capsys):
    code = shard_cli.main(["identity", "--requests", "600",
                           "--shards", "2", "4", *OVR])
    assert code == 0
    out = capsys.readouterr().out
    assert "identical" in out
    assert "shard identity holds" in out


def test_identity_exercises_forked_path(capsys):
    code = shard_cli.main(["identity", "--requests", "400",
                           "--shards", "2", "--forked", *OVR])
    assert code == 0
    assert "forked" in capsys.readouterr().out


def test_crosscheck_vector_vs_scalar(capsys):
    code = shard_cli.main(["crosscheck", "--requests", "600",
                           "--kind", "rand", *OVR])
    assert code == 0
    assert "matches the scalar reference" in capsys.readouterr().out


def test_usage_error_exit_2(capsys):
    code = shard_cli.main(["run", "--kind", "burst", "--requests", "100",
                           "--override", "no_such_knob=1"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_malformed_override_rejected():
    with pytest.raises(SystemExit):
        shard_cli.main(["run", "--override", "not-key-value"])


def test_ops_file_round_trip(tmp_path, capsys):
    ops = [{"op": "write", "addr": 0, "count": 64, "stride": 64},
           {"op": "fence"}]
    path = tmp_path / "ops.json"
    path.write_text(json.dumps(ops))
    code = shard_cli.main(["run", "--ops", str(path), "--shards", "1"])
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ops"] == 64


# -- bench cases ------------------------------------------------------------

def test_shard_bench_cases_report_kernelbench_shape():
    from repro.shard.bench import run_shard_bench
    numbers = run_shard_bench(nrequests=2048, seed=1)
    assert set(numbers) == {"ddrt_burst", "media_randmix"}
    for case in numbers.values():
        assert case["events"] == 2048
        assert 0 <= case["order_checksum"] < 2 ** 32
        assert case["speedup"] > 0
        assert case["legacy_events_per_s"] > 0
        assert case["optimized_events_per_s"] > 0
        assert case["kernel_stats"]["plan"]["effective"] >= 1
    # the --shards knob overrides each case's own shard count, and the
    # checksum is shard-count-invariant (identity by construction)
    at4 = run_shard_bench(nrequests=2048, seed=1, shards=4)
    for name, case in at4.items():
        assert case["kernel_stats"]["plan"]["requested"] == 4
        assert case["order_checksum"] == numbers[name]["order_checksum"]


def test_kernel_suite_lists_shard_cases():
    from repro.telemetry.bench import suite_ids
    ids = suite_ids("kernel")
    assert "shard.ddrt_burst" in ids
    assert "shard.media_randmix" in ids
    assert "kernel.ddrt_burst" in ids
