"""Host-side kernel profiler (``repro.prof``) and engine health
introspection: null-object cost model, frame accounting, instrument /
uninstrument lifecycle, bit-identity of profiled runs, kernel_stats,
export round-trips, and regression localization via ``repro-prof diff``.
"""

from __future__ import annotations

import json
from time import perf_counter_ns

import pytest
from hypothesis import given, settings, strategies as st

from repro import registry
from repro.engine.event import Engine, aggregate_kernel_stats
from repro.engine.kernelbench import CASES
from repro.prof import (
    NULL_PROF,
    PROFILE_SCHEMA,
    Profiler,
    current,
    diff_profiles,
    format_movers,
    parse_collapsed,
    profile_from_dict,
    session,
    to_chrome,
    to_collapsed,
    to_speedscope,
    validate_profile,
)
from repro.vans.system import VansSystem


def _busy_ns(duration_ns: int) -> None:
    end = perf_counter_ns() + duration_ns
    while perf_counter_ns() < end:
        pass


class TestNullProfiler:
    def test_null_prof_is_disabled_and_inert(self):
        assert NULL_PROF.enabled is False
        fn = lambda: 7  # noqa: E731
        assert NULL_PROF.wrap("k", fn) is fn
        with NULL_PROF.frame("k"):
            pass
        NULL_PROF.instrument(object())
        NULL_PROF.uninstrument_all()

    def test_targets_carry_null_prof_class_side(self):
        system = VansSystem()
        assert system.prof is NULL_PROF
        assert "prof" not in system.__dict__

    def test_no_session_means_null_current(self):
        assert current() is NULL_PROF

    def test_unprofiled_engine_keeps_fast_dispatch(self):
        engine = Engine()
        assert engine._fast_dispatch is True
        assert engine.profiler is None

    def test_unprofiled_build_keeps_fast_bindings(self):
        """registry.build without a prof session installs no wrappers."""
        system = registry.build("vans")
        try:
            for _key, obj, name in system.profile_points():
                binding = getattr(obj, "__dict__", {}).get(name)
                assert not getattr(binding, "__repro_prof__", False)
        finally:
            registry.release(system)


class TestFrameAccounting:
    def test_self_excludes_children_cum_includes_them(self):
        prof = Profiler()
        with prof.frame("parent"):
            _busy_ns(2_000_000)
            with prof.frame("child"):
                _busy_ns(2_000_000)
        doc = prof.to_dict()
        parent = doc["frames"]["parent"]
        child = doc["frames"]["child"]
        assert parent["calls"] == 1 and child["calls"] == 1
        assert parent["cum_ns"] >= parent["self_ns"] + child["cum_ns"]
        assert parent["self_ns"] < parent["cum_ns"]
        # total self time equals the root's cumulative time
        assert doc["total_self_ns"] == pytest.approx(
            parent["cum_ns"], rel=0.05)

    def test_recursion_counts_cum_once(self):
        prof = Profiler()

        def recurse(depth: int) -> None:
            with prof.frame("r"):
                _busy_ns(500_000)
                if depth:
                    recurse(depth - 1)

        recurse(3)
        frame = prof.to_dict()["frames"]["r"]
        assert frame["calls"] == 4
        # cum counted only at the outermost frame: ~4x one slice, not
        # the ~10x a naive sum over nested frames would give
        assert frame["cum_ns"] < 8 * 500_000
        assert frame["self_ns"] == pytest.approx(frame["cum_ns"], rel=0.5)

    def test_stack_paths_recorded(self):
        prof = Profiler()
        with prof.frame("a"):
            with prof.frame("b"):
                pass
        stacks = {tuple(e["stack"]) for e in prof.to_dict()["stacks"]}
        assert ("a",) in stacks and ("a", "b") in stacks

    def test_to_dict_is_deterministic_and_valid(self):
        prof = Profiler()
        with prof.frame("z"):
            with prof.frame("a"):
                pass
        doc = prof.to_dict(wall_ns=123, meta={"workload": "t"})
        assert doc["schema"] == PROFILE_SCHEMA
        assert list(doc["frames"]) == sorted(doc["frames"])
        assert validate_profile(doc) == []
        assert profile_from_dict(json.loads(json.dumps(doc))) == \
            profile_from_dict(doc)


class TestInstrumentLifecycle:
    def test_session_build_wraps_and_restores(self):
        prof = Profiler()
        with session(prof):
            assert current() is prof
            system = registry.build("vans")
            wrapped = system.__dict__.get("read")
            assert getattr(wrapped, "__repro_prof__", False)
            assert wrapped.__repro_prof_key__ == "vans.read"
            assert system.__dict__.get("_prof_wrapped") is True
            now = system.read(0x2000, 0)
            assert now > 0
        # session exit uninstruments: binding restored, marker gone
        assert not getattr(system.__dict__.get("read"),
                           "__repro_prof__", False)
        assert "_prof_wrapped" not in system.__dict__
        assert current() is NULL_PROF
        registry.release(system)
        assert prof.to_dict()["frames"]["vans.read"]["calls"] == 1

    def test_release_strips_wrappers_before_parking(self):
        """A warm-cached system must never carry another session's
        profiling wrappers."""
        prof = Profiler()
        with session(prof):
            system = registry.build("vans")
            registry.release(system)     # released inside the session
        for _key, obj, name in system.profile_points():
            binding = getattr(obj, "__dict__", {}).get(name)
            assert not getattr(binding, "__repro_prof__", False)

    def test_slotted_stations_are_skipped(self):
        prof = Profiler()
        system = VansSystem()
        prof.instrument(system)
        try:
            # instrument never raises on slotted owners and wraps at
            # least the composite surfaces
            keys = {r[2].__repro_prof_key__ for r in prof._wrapped}
            assert "vans.read" in keys and "media.access" in keys
        finally:
            prof.uninstrument_all()

    def test_double_instrument_is_idempotent(self):
        prof = Profiler()
        system = VansSystem()
        prof.instrument(system)
        before = len(prof._wrapped)
        prof.instrument(system)
        assert len(prof._wrapped) == before
        prof.uninstrument_all()
        assert prof._wrapped == []


class TestBitIdentity:
    def test_profiled_run_is_bit_identical(self):
        """Profiling is host-side observation only: simulated time from
        a profiled run equals the unprofiled run exactly."""
        def end_time(prof):
            with session(prof):
                system = registry.build("vans")
                now = 0
                for i in range(100):
                    now = system.read((i * 4096) % (1 << 20), now)
            registry.release(system)
            return now

        assert end_time(None) == end_time(Profiler())

    def test_fig1_payload_identical_with_profiler(self):
        """fig1 with flight + telemetry attached: rows, metrics, flight
        JSON, and telemetry timeline all bit-identical under the
        profiler (wall_s excluded by definition)."""
        from repro.experiments.exec import run_experiment
        from repro.flight import FlightRecorder

        def payload(prof):
            results = run_experiment(
                "fig1", flight=FlightRecorder(mode="every", every=16),
                telemetry={"interval_ps": 1_000_000}, prof=prof)
            return json.dumps(
                [{"rows": [list(r) for r in result.rows],
                  "metrics": result.metrics,
                  "flight": result.flight,
                  "telemetry": result.telemetry}
                 for result in results],
                sort_keys=True, default=str)

        assert payload(None) == payload(Profiler())


class TestEngineProfiledDispatch:
    def test_profiled_dispatch_matches_unprofiled(self):
        for case, driver in CASES.items():
            bare = Engine()
            checksum = driver(bare, 4000, seed=7)

            prof = Profiler()
            engine = Engine()
            prof.attach_engine(engine)
            assert engine._fast_dispatch is False
            profiled = driver(engine, 4000, seed=7)
            prof.uninstrument_all()
            assert engine.profiler is None

            assert profiled == checksum, case
            assert engine.processed_events == bare.processed_events
            frames = prof.to_dict()["frames"]
            assert any(k.startswith("handler.") for k in frames)
            assert sum(f["calls"] for f in frames.values()) == \
                engine.processed_events

    def test_handler_keys_use_qualnames(self):
        prof = Profiler()
        engine = Engine()
        prof.attach_engine(engine)
        CASES["pointer_chase"](engine, 500, 0)
        prof.uninstrument_all()
        assert "handler._drive_pointer_chase.completion" in \
            prof.to_dict()["frames"]


class TestKernelStats:
    def test_ddrt_burst_stats(self):
        engine = Engine()
        CASES["ddrt_burst"](engine, 20_000, 0)
        stats = engine.kernel_stats()
        assert stats["events"] == engine.processed_events
        assert stats["scheduled"] >= stats["events"]
        assert stats["pool_hits"] + stats["pool_misses"] == \
            stats["scheduled"]
        assert 0.0 <= stats["pool_hit_rate"] <= 1.0
        # steady-state scheduling reuses pooled events heavily
        assert stats["pool_hit_rate"] > 0.5
        assert stats["batch_hist"], "burst workload must batch"
        assert sum(stats["batch_hist"].values()) > 0

    def test_far_horizon_migrates(self):
        engine = Engine()
        CASES["far_horizon"](engine, 20_000, 0)
        assert engine.kernel_stats()["far_migrations"] > 0

    def test_cancel_heavy_compacts(self):
        engine = Engine()
        CASES["cancel_heavy"](engine, 20_000, 0)
        stats = engine.kernel_stats()
        assert stats["cancelled_pending"] == 0  # drained by run()
        assert stats["compactions"] >= 1
        assert stats["compacted_entries"] > 0

    def test_occupancy_shape(self):
        engine = Engine()
        engine.schedule(100, lambda: None)
        engine.schedule(10**9, lambda: None)
        stats = engine.kernel_stats()
        assert stats["pending"] == 2
        assert stats["far_events"] >= 1
        assert stats["buckets"] >= 1

    def test_aggregate_sums_engines(self):
        base = aggregate_kernel_stats()
        a, b = Engine(), Engine()
        CASES["pointer_chase"](a, 1000, 0)
        CASES["pointer_chase"](b, 1000, 0)
        agg = aggregate_kernel_stats()
        assert agg["engines"] >= base["engines"] + 2
        assert agg["events"] >= base["events"] + 2000

    def test_publish_kernel_gauges(self):
        from repro.instrument import InstrumentBus

        engine = Engine()
        CASES["ddrt_burst"](engine, 2000, 0)
        bus = InstrumentBus()
        engine.publish_kernel_gauges(bus)
        snap = bus.snapshot()
        assert snap["kernel.events"] == engine.processed_events
        assert "kernel.pool_hit_rate" in snap

    def test_kernelbench_records_stats(self):
        from repro.engine.kernelbench import run_kernel_bench

        results = run_kernel_bench(nevents=2000, seed=0, repeats=1)
        for case, entry in results.items():
            assert entry["kernel_stats"]["events"] == entry["events"], case
            assert "batch_hist" in entry["kernel_stats"]


SAFE_KEY = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"),
                           whitelist_characters="._-"),
    min_size=1, max_size=20)
COUNT = st.integers(min_value=0, max_value=2**40)


@st.composite
def profile_docs(draw):
    keys = draw(st.lists(SAFE_KEY, min_size=1, max_size=6, unique=True))
    frames = {
        key: {"calls": draw(COUNT), "self_ns": draw(COUNT),
              "cum_ns": draw(COUNT)}
        for key in keys
    }
    paths = draw(st.lists(
        st.lists(st.sampled_from(keys), min_size=1, max_size=4),
        min_size=1, max_size=6, unique_by=tuple))
    stacks = [{"stack": path, "calls": draw(COUNT),
               "self_ns": draw(COUNT)} for path in paths]
    return {
        "schema": PROFILE_SCHEMA,
        "meta": {"workload": draw(SAFE_KEY)},
        "wall_ns": draw(st.none() | COUNT),
        "total_self_ns": sum(f["self_ns"] for f in frames.values()),
        "frames": frames,
        "stacks": stacks,
    }


class TestRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(profile_docs())
    def test_profile_json_round_trip(self, doc):
        canonical = profile_from_dict(doc)
        assert validate_profile(canonical) == []
        assert profile_from_dict(
            json.loads(json.dumps(canonical))) == canonical

    @settings(max_examples=40, deadline=None)
    @given(profile_docs())
    def test_collapsed_round_trip(self, doc):
        canonical = profile_from_dict(doc)
        parsed = parse_collapsed(to_collapsed(canonical))
        want = sorted(
            (tuple(e["stack"]), e["self_ns"])
            for e in canonical["stacks"])
        got = sorted((tuple(e["stack"]), e["self_ns"]) for e in parsed)
        assert got == want

    def test_parse_collapsed_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_collapsed("a;b not-a-number\n")

    def test_speedscope_weights_align(self):
        prof = Profiler()
        with prof.frame("a"):
            with prof.frame("b"):
                _busy_ns(100_000)
        doc = prof.to_dict(wall_ns=1)
        ss = to_speedscope(doc, name="t")
        profile = ss["profiles"][0]
        assert profile["unit"] == "nanoseconds"
        assert len(profile["samples"]) == len(profile["weights"])
        nframes = len(ss["shared"]["frames"])
        assert all(idx < nframes
                   for sample in profile["samples"] for idx in sample)
        assert sum(profile["weights"]) == doc["total_self_ns"]

    def test_chrome_trace_and_merge(self):
        from repro.prof import merge_chrome

        prof = Profiler()
        with prof.frame("a"):
            _busy_ns(100_000)
        doc = prof.to_dict(wall_ns=1)
        trace = to_chrome(doc)
        kinds = {e["ph"] for e in trace["traceEvents"]}
        assert "X" in kinds and "C" in kinds and "M" in kinds
        flight = {"traceEvents": [{"ph": "X", "pid": 0, "tid": 0,
                                   "ts": 0, "dur": 1, "name": "req"}]}
        merged = merge_chrome(flight, doc)
        pids = {e["pid"] for e in merged["traceEvents"]}
        assert pids == {0, 1}


class TestDiff:
    @staticmethod
    def _doc(frames_self_ms):
        frames = {key: {"calls": 1, "self_ns": int(ms * 1e6),
                        "cum_ns": int(ms * 1e6)}
                  for key, ms in frames_self_ms.items()}
        return {"schema": PROFILE_SCHEMA, "meta": {}, "wall_ns": None,
                "total_self_ns": sum(f["self_ns"]
                                     for f in frames.values()),
                "frames": frames, "stacks": []}

    def test_identical_profiles_report_nothing(self):
        doc = self._doc({"a": 50, "b": 50})
        assert diff_profiles(doc, doc) == []
        assert "no significant movers" in format_movers([])

    def test_uniform_machine_speedup_is_not_a_mover(self):
        a = self._doc({"a": 50, "b": 50})
        b = self._doc({"a": 100, "b": 100})   # 2x slower machine
        assert diff_profiles(a, b) == []

    def test_injected_station_slowdown_is_localized(self):
        """A 2x+ slowdown injected into one media station shows up as
        the top mover under its attribution key."""
        from repro.media.xpoint import XPointMedia

        def profile_reads(slow: bool):
            original = XPointMedia._access_fast

            def slow_access(self, media_addr, is_write, now):
                _busy_ns(20_000)
                return original(self, media_addr, is_write, now)

            if slow:
                XPointMedia._access_fast = slow_access
            try:
                prof = Profiler()
                system = VansSystem()
                prof.instrument(system)
                with prof.frame("workload"):
                    now = 0
                    for i in range(150):
                        now = system.read((i * 4096) % (1 << 20), now)
                prof.uninstrument_all()
                return prof.to_dict()
            finally:
                XPointMedia._access_fast = original

        movers = diff_profiles(profile_reads(False), profile_reads(True))
        assert movers, "injected slowdown must be detected"
        assert movers[0].key == "media.access"
        assert movers[0].direction == "slower"
        assert movers[0].ratio >= 2.0
        assert "media.access" in format_movers(movers)


class TestCli:
    def test_diff_cli_same_profile_exits_zero(self, tmp_path, capsys):
        from repro.tools.prof_cli import main

        prof = Profiler()
        with prof.frame("a"):
            _busy_ns(100_000)
        path = tmp_path / "p.json"
        path.write_text(json.dumps(prof.to_dict(wall_ns=1)))
        assert main(["diff", str(path), str(path),
                     "--fail-on-movers"]) == 0
        assert "no significant movers" in capsys.readouterr().out

    def test_diff_cli_movers_exit_three(self, tmp_path):
        from repro.tools.prof_cli import main

        a = TestDiff._doc({"hot": 10, "cold": 90})
        b = TestDiff._doc({"hot": 200, "cold": 90})
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        pa.write_text(json.dumps(a))
        pb.write_text(json.dumps(b))
        assert main(["diff", str(pa), str(pb)]) == 0
        assert main(["diff", str(pa), str(pb),
                     "--fail-on-movers"]) == 3

    def test_diff_cli_bad_input_exits_two(self, tmp_path):
        from repro.tools.prof_cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["diff", str(bad), str(bad)]) == 2
        assert main(["diff", str(tmp_path / "missing.json"),
                     str(bad)]) == 2

    def test_kernel_cli_writes_exports(self, tmp_path, capsys):
        from repro.tools.prof_cli import main

        out = tmp_path / "k.json"
        ss = tmp_path / "k.speedscope.json"
        assert main(["kernel", "pointer_chase", "--events", "2000",
                     "--json", str(out), "--speedscope", str(ss)]) == 0
        doc = profile_from_dict(json.loads(out.read_text()))
        assert "kernel.pointer_chase" in doc["frames"]
        assert json.loads(ss.read_text())["profiles"]
        assert "coverage" in capsys.readouterr().out

    def test_kernel_cli_unknown_case_exits_two(self):
        from repro.tools.prof_cli import main

        assert main(["kernel", "nope"]) == 2

    def test_run_cli_unknown_experiment_exits_two(self):
        from repro.tools.prof_cli import main

        assert main(["run", "nope"]) == 2

    def test_prof_health_unreachable_exits_two(self, capsys):
        from repro.tools.prof_cli import main

        assert main(["health", "--port", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_top_unreachable_exits_two(self, capsys):
        from repro.tools.top_cli import main

        assert main(["--once", "--port", "1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestServeKernelMetrics:
    DOC = {
        "uptime_s": 1.0, "sessions": 0, "counters": {},
        "scheduler": {"submitted": 0, "dispatched": 0, "completed": 0,
                      "rejected": 0, "dispatch_log_total": 0,
                      "queued": 0, "active": 0},
        "pool": {"workers": 1, "idle": 1, "busy": 0, "alive": 1,
                 "spawned": 1, "respawned": 0, "completed": 1,
                 "errors": 0, "timeouts": 0, "rejects": 0,
                 "warm_cache": {"hits": 1, "misses": 0, "size": 1},
                 "kernel": {"engines": 2, "events": 5000,
                            "scheduled": 5100, "pending": 0,
                            "pooled": 12, "pool_hits": 4000,
                            "pool_misses": 1100,
                            "pool_hit_rate": 0.784,
                            "far_migrations": 3, "compactions": 1,
                            "compacted_entries": 40,
                            "cancelled_pending": 0,
                            "singleton_dispatches": 900,
                            "buckets": 4, "binned_events": 0,
                            "active_remaining": 0, "far_events": 0,
                            "batch_hist": {"1": 900, "2-3": 500,
                                           "4-7": 120}}},
    }

    def test_kernel_series_render_and_parse(self):
        from repro.serve.metrics import parse_exposition, render_prometheus

        samples = parse_exposition(render_prometheus(self.DOC))
        assert samples["repro_kernel_engines"] == 2
        assert samples["repro_kernel_events_total"] == 5000
        assert samples[
            'repro_kernel_pool_events_total{outcome="hit"}'] == 4000
        assert samples[
            'repro_kernel_pool_events_total{outcome="miss"}'] == 1100
        assert samples["repro_kernel_pool_hit_ratio"] == \
            pytest.approx(0.784)
        assert samples[
            'repro_kernel_batch_dispatches_total{batch_size="2-3"}'] \
            == 500
        assert samples["repro_kernel_far_migrations_total"] == 3

    def test_live_daemon_ships_kernel_section(self):
        """Worker payloads carry the kernel aggregate; the daemon
        renders it and ``repro-prof health`` reads it (zeros for
        analytic jobs, which build no event engine)."""
        from repro.serve.client import ServeClient
        from repro.serve.server import running_daemon
        from repro.tools.prof_cli import main

        ops = [{"op": "read", "addr": 0, "count": 500, "stride": 64}]
        with running_daemon(workers=1, warm_cache=4) as daemon:
            with ServeClient("127.0.0.1", daemon.port,
                             tenant="prof") as client:
                client.run_stream("vans", ops)
                doc = client.metrics()
                expo = client.metrics(format="prometheus")
            assert "kernel" in doc["pool"]
            assert "events" in doc["pool"]["kernel"]
            assert any(line.startswith("repro_kernel_events_total")
                       for line in expo.splitlines())
            assert main(["health", "--port", str(daemon.port)]) == 0

    def test_no_kernel_section_renders_cleanly(self):
        from repro.serve.metrics import parse_exposition, render_prometheus

        doc = {k: v for k, v in self.DOC.items()}
        doc["pool"] = {k: v for k, v in self.DOC["pool"].items()
                       if k != "kernel"}
        samples = parse_exposition(render_prometheus(doc))
        assert not any(k.startswith("repro_kernel_") for k in samples)
