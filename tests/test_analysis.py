"""LENS curve-analysis functions."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.stats import LatencySeries
from repro.lens.analysis import (
    accuracy,
    amplification_scores,
    detect_drop,
    detect_period,
    excess_knee,
    find_inflections,
    geomean,
    mean_tail_gap,
    score_knee,
)


def series(points):
    s = LatencySeries("t")
    for x, y in points:
        s.add(x, y)
    return s


class TestInflections:
    def test_two_clean_tiers(self):
        s = series([(1024, 100), (2048, 100), (4096, 100),
                    (8192, 180), (16384, 190), (32768, 320), (65536, 330)])
        assert find_inflections(s) == [4096, 16384]

    def test_flat_curve_no_inflections(self):
        s = series([(2 ** i, 100.0) for i in range(10, 20)])
        assert find_inflections(s) == []

    def test_gradual_rise_no_false_positive(self):
        s = series([(2 ** i, 100.0 * 1.05 ** i) for i in range(10, 20)])
        assert find_inflections(s) == []

    def test_single_point(self):
        assert find_inflections(series([(1, 5)])) == []

    @given(st.integers(2, 10))
    def test_synthetic_buffer_curve(self, capacity_log):
        """A blended LRU-buffer curve always yields the planted capacity."""
        capacity = 1024 << capacity_log
        xs = [1024 << i for i in range(capacity_log + 6)]
        t_hit, t_miss = 100.0, 400.0
        pts = []
        for x in xs:
            hit = min(1.0, capacity / x)
            pts.append((x, hit * t_hit + (1 - hit) * t_miss))
        found = find_inflections(series(pts))
        assert capacity in found


class TestAmplification:
    def test_scores_ratio(self):
        over = series([(64, 200.0), (256, 120.0)])
        fit = series([(64, 100.0), (256, 100.0)])
        scores = amplification_scores(over, fit)
        assert scores.values == [2.0, 1.2]

    def test_score_knee(self):
        scores = series([(64, 2.0), (128, 1.5), (256, 1.05), (512, 1.0)])
        assert score_knee(scores) == 256

    def test_excess_knee_finds_entry_size(self):
        over = series([(64, 211.0), (128, 160.0), (256, 128.0), (512, 126.0)])
        fit = series([(64, 100.0), (128, 100.0), (256, 100.0), (512, 100.0)])
        assert excess_knee(over, fit) == 256

    def test_empty_inputs(self):
        assert score_knee(series([])) == 0
        assert excess_knee(series([]), series([])) == 0


class TestDropAndPeriod:
    def test_detect_drop(self):
        s = series([(256, 0.04), (1024, 0.041), (65536, 0.04),
                    (131072, 0.001), (262144, 0.0)])
        assert detect_drop(s) == 65536

    def test_no_drop(self):
        s = series([(256, 0.04), (1024, 0.05)])
        assert detect_drop(s) == 0

    def test_detect_period(self):
        # sawtooth with period 8 samples of step 512 -> 4096 bytes
        pts = []
        for i in range(40):
            base = i * 10.0
            pts.append((512 * (i + 1), base + (5.0 if i % 8 == 0 else 0.0)))
        assert detect_period(series(pts)) == 8 * 512

    def test_no_period_on_linear(self):
        pts = [(512 * (i + 1), 10.0 * i) for i in range(40)]
        assert detect_period(series(pts)) == 0

    def test_period_needs_enough_points(self):
        assert detect_period(series([(1, 1.0), (2, 2.0)])) == 0


class TestAccuracyMetrics:
    def test_perfect_match(self):
        assert accuracy([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_paper_metric_definition(self):
        # 10% error on one point, exact on the other -> 95%
        assert accuracy([1.1, 2.0], [1.0, 2.0]) == pytest.approx(0.95)

    def test_floor_at_zero(self):
        assert accuracy([10.0], [1.0]) == 0.0

    def test_zero_reference_skipped(self):
        assert accuracy([1.0, 5.0], [0.0, 5.0]) == 1.0

    def test_empty(self):
        assert accuracy([], []) == 0.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_mean_tail_gap(self):
        assert mean_tail_gap([10, 20, 40]) == 15.0
        assert mean_tail_gap([5]) == 0.0

    @given(st.lists(st.floats(0.1, 100), min_size=1, max_size=20))
    def test_accuracy_bounded(self, refs):
        sims = [r * 1.05 for r in refs]
        acc = accuracy(sims, refs)
        assert 0.0 <= acc <= 1.0
        assert acc == pytest.approx(0.95)
