"""Multi-DIMM interleaving address mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.common.units import KIB
from repro.vans.interleave import Interleaver


def test_first_4k_on_one_dimm():
    inter = Interleaver(6, 4 * KIB, True)
    dimms = {inter.map(addr)[0] for addr in range(0, 4 * KIB, 64)}
    assert dimms == {0}


def test_consecutive_chunks_rotate_dimms():
    inter = Interleaver(6, 4 * KIB, True)
    assert [inter.map(i * 4 * KIB)[0] for i in range(8)] == [0, 1, 2, 3, 4, 5, 0, 1]


def test_local_addresses_compact():
    inter = Interleaver(2, 4 * KIB, True)
    # second chunk on dimm1 starts at local 0
    assert inter.map(4 * KIB) == (1, 0)
    # third chunk back on dimm0 at local 4K
    assert inter.map(8 * KIB) == (0, 4 * KIB)


def test_non_interleaved_identity():
    inter = Interleaver(6, 4 * KIB, False)
    assert inter.map(123456) == (0, 123456)


def test_single_dimm_never_interleaves():
    inter = Interleaver(1, 4 * KIB, True)
    assert not inter.interleaved


def test_invalid_configs():
    with pytest.raises(ConfigError):
        Interleaver(0, 4096, True)
    with pytest.raises(ConfigError):
        Interleaver(2, 3000, True)


@given(st.integers(0, (1 << 40) - 1), st.sampled_from([2, 4, 6]),
       st.sampled_from([4 * KIB, 64 * KIB]))
def test_map_unmap_bijection(addr, ndimms, granularity):
    inter = Interleaver(ndimms, granularity, True)
    dimm, local = inter.map(addr)
    assert 0 <= dimm < ndimms
    assert inter.unmap(dimm, local) == addr


@given(st.integers(0, (1 << 30) - 65), st.sampled_from([2, 6]))
def test_offsets_within_granule_preserved(addr, ndimms):
    inter = Interleaver(ndimms, 4 * KIB, True)
    _, local = inter.map(addr)
    assert local % (4 * KIB) == addr % (4 * KIB)
