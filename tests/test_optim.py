"""Pre-translation and Lazy cache components."""

import pytest

from repro.common.units import KIB
from repro.optim.lazycache import LazyCache, LazyCacheConfig
from repro.optim.pretranslation import PreTranslation, PreTranslationConfig


class TestPreTranslation:
    def test_first_observation_misses_and_updates(self):
        pt = PreTranslation()
        assert pt.observe(0x1000, 0x5000) is False
        assert pt.observe(0x1000, 0x5000) is True  # entry now present

    def test_pointer_change_invalidates(self):
        pt = PreTranslation()
        pt.observe(0x1000, 0x5000)
        # node's pointer now targets a different page: stale -> update
        assert pt.observe(0x1000, 0x9000) is False
        assert pt.observe(0x1000, 0x9000) is True

    def test_same_page_pointers_match(self):
        pt = PreTranslation()
        pt.observe(0x1000, 0x5000)
        # different offset, same page frame -> still a valid entry
        assert pt.observe(0x1000, 0x5040) is True

    def test_hit_rate(self):
        pt = PreTranslation()
        pt.observe(0, 4096)
        pt.observe(0, 4096)
        pt.observe(0, 4096)
        assert pt.hit_rate == pytest.approx(2 / 3)

    def test_rlb_capacity_bounded(self):
        cfg = PreTranslationConfig(rlb_bytes=64, rlb_entry_bytes=16)
        pt = PreTranslation(cfg)
        for i in range(10):
            pt.observe(i * 64, 4096)
        assert len(pt._rlb) <= cfg.rlb_entries

    def test_table_capacity_bounded(self):
        cfg = PreTranslationConfig(table_bytes=80, table_entry_bytes=8)
        pt = PreTranslation(cfg)
        for i in range(100):
            pt.observe(i * 64, 4096)
        assert len(pt._table) <= cfg.table_entries

    def test_stale_rate_discards_hits(self):
        pt = PreTranslation(PreTranslationConfig(stale_rate=1.0))
        pt.observe(0, 4096)
        assert pt.observe(0, 4096) is False  # always stale
        assert pt.stats.snapshot()["pretrans.stale"] >= 1

    def test_config_defaults_match_paper(self):
        cfg = PreTranslationConfig()
        assert cfg.rlb_bytes == 1 * KIB
        assert cfg.table_bytes == 16 * 1024 * 1024


class TestLazyCache:
    def test_mark_and_absorb(self):
        lazy = LazyCache()
        lazy.mark_hot(0)
        assert lazy.is_hot(0)
        assert lazy.absorb(0) == []
        assert lazy.contains(0)
        assert lazy.absorbed == 1

    def test_eviction_returns_dirty_victims(self):
        cfg = LazyCacheConfig(lz2_bytes=256, lz2_line=128,
                              lz1_bytes=128, lz1_line=64)
        lazy = LazyCache(cfg)
        evicted = []
        for i in range(5):
            evicted.extend(lazy.absorb(i * 256))
        assert evicted  # 5 absorbs into 2 LZ2 entries -> victims
        assert all(isinstance(v, int) for v in evicted)

    def test_inclusive_lz1_subset_of_lz2(self):
        lazy = LazyCache()
        for i in range(40):
            lazy.absorb(i * 256)
        for addr in lazy._lz1:
            assert addr in lazy._lz2

    def test_wlb_capacity_bounded(self):
        lazy = LazyCache()
        for i in range(200):
            lazy.mark_hot(i * 256)
        assert len(lazy._wlb) <= lazy._wlb_entries

    def test_flush_drains_everything(self):
        lazy = LazyCache()
        lazy.absorb(0)
        lazy.absorb(256)
        dirty = lazy.flush()
        assert set(dirty) == {0, 256}
        assert not lazy.contains(0)

    def test_total_size_is_3kb(self):
        cfg = LazyCacheConfig()
        assert cfg.lz1_bytes + cfg.lz2_bytes == 3 * KIB


class TestLazyCacheInDimm:
    def test_hot_block_writes_skip_media(self, fast_wear_config):
        from dataclasses import replace
        from repro.vans import VansSystem

        cfg = fast_wear_config.with_lazy_cache()
        system = VansSystem(cfg)
        threshold = cfg.dimm.wear.migrate_threshold
        now = 0
        # hammer one 256B block well past the hot threshold
        for i in range(threshold * 3):
            for line in range(4):
                now = system.write(line * 64, now)
            now = system.fence(now)
        dimm = system.dimm
        assert dimm.lazy.absorbed > 0
        # once absorbed, media writes stop accruing for that block
        media_writes = dimm.media.writes
        for i in range(50):
            for line in range(4):
                now = system.write(line * 64, now)
            now = system.fence(now)
        assert dimm.media.writes == media_writes

    def test_lazy_limits_migrations(self, fast_wear_config):
        from repro.vans import VansSystem

        def migrations(lazy):
            cfg = fast_wear_config.with_lazy_cache(lazy)
            system = VansSystem(cfg)
            now = 0
            for i in range(cfg.dimm.wear.migrate_threshold * 5):
                now = system.write(0, now)
                now = system.fence(now)
            return system.wear_migrations

        assert migrations(True) < migrations(False)

    def test_lazy_read_hits_cached_block(self, fast_wear_config):
        from repro.vans import VansSystem

        cfg = fast_wear_config.with_lazy_cache()
        system = VansSystem(cfg)
        now = 0
        for i in range(cfg.dimm.wear.migrate_threshold * 2):
            now = system.write(0, now)
            now = system.fence(now)
        assert system.dimm.lazy.contains(0)
        t0 = now + 10**6
        hit = system.read(0, t0) - t0
        assert hit < 200_000  # served on-DIMM, no media
