"""Fast-path kernel: calendar queue vs legacy heap equivalence.

The optimized kernel must be *invisible*: identical firing order
(ascending time, FIFO among equal timestamps), identical clock
behaviour under ``until``/``max_events``, and pooled Event/Request
objects indistinguishable from fresh ones.  Random workloads are
cross-checked against the seed binary-heap kernel property-style.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.engine.calendar import CalendarQueue
from repro.engine.event import Engine, LegacyEngine
from repro.engine.request import Op, Request, RequestPool


def tiny_bucket_engine():
    """2**2-ps buckets, 4-bucket far horizon: hammers bucket rollover
    and the far-future heap migration on ordinary timestamps."""
    return Engine(bucket_shift=2, far_span=4)


ENGINE_FACTORIES = [Engine, tiny_bucket_engine]


# ---------------------------------------------------------------------------
# random-workload interpreter, run identically on two kernels
# ---------------------------------------------------------------------------

#: program op codes: (kind, a, b)
#:   kind 0 — schedule a recorder at now+a
#:   kind 1 — cancel the (a mod live)-th still-live handle
#:   kind 2 — schedule at now+a a callback that schedules a recorder at +b
#:            when it fires (schedule-during-dispatch)
#:   kind 3 — run(until=now+a) (partial drain, remnant state)
#:   kind 4 — cancel-then-reschedule: cancel like kind 1, schedule at now+b
program_entries = st.tuples(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=300),
    st.integers(min_value=0, max_value=120),
)


def run_program(engine, program):
    """Interpret ``program``; returns the (time, label) firing trace."""
    fired = []
    handles = {}
    label_counter = [0]

    def recorder(label, slot):
        def cb():
            fired.append((engine.now, label))
            handles.pop(slot, None)   # contract: drop fired handles
        return cb

    def chained(label, slot, delay):
        def cb():
            fired.append((engine.now, label))
            handles.pop(slot, None)
            inner = label_counter[0]
            label_counter[0] += 1
            inner_slot = f"chain-{inner}"
            handles[inner_slot] = engine.schedule(
                delay, recorder(inner, inner_slot))
        return cb

    def do_schedule(delay, chain_delay=None):
        label = label_counter[0]
        label_counter[0] += 1
        slot = f"top-{label}"
        if chain_delay is None:
            handles[slot] = engine.schedule(delay, recorder(label, slot))
        else:
            handles[slot] = engine.schedule(
                delay, chained(label, slot, chain_delay))

    for kind, a, b in program:
        if kind == 0:
            do_schedule(a)
        elif kind == 1 and handles:
            slot = sorted(handles)[a % len(handles)]
            handles.pop(slot).cancel()
        elif kind == 2:
            do_schedule(a, chain_delay=b)
        elif kind == 3:
            engine.run(until=engine.now + a)
        elif kind == 4 and handles:
            slot = sorted(handles)[a % len(handles)]
            handles.pop(slot).cancel()
            do_schedule(b)
    engine.run()
    return fired


@settings(max_examples=120, deadline=None)
@given(program=st.lists(program_entries, max_size=60))
def test_calendar_matches_legacy_heap_order(program):
    legacy_trace = run_program(LegacyEngine(), program)
    for factory in ENGINE_FACTORIES:
        engine = factory()
        assert run_program(engine, program) == legacy_trace
        legacy = LegacyEngine()
        run_program(legacy, program)
        assert engine.now == legacy.now
        assert engine.processed_events == legacy.processed_events


@settings(max_examples=60, deadline=None)
@given(
    times=st.lists(st.integers(min_value=0, max_value=500),
                   min_size=1, max_size=80),
    until=st.integers(min_value=0, max_value=600),
)
def test_run_until_matches_legacy(times, until):
    def drive(engine):
        fired = []
        for i, t in enumerate(times):
            engine.schedule_at(t, fired.append, i)
        engine.run(until=until)
        mid = (list(fired), engine.now, engine.pending())
        engine.run()
        return mid, fired, engine.now

    legacy = drive(LegacyEngine())
    for factory in ENGINE_FACTORIES:
        assert drive(factory()) == legacy


# ---------------------------------------------------------------------------
# equal-timestamp FIFO regression
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("factory", ENGINE_FACTORIES + [LegacyEngine])
def test_equal_timestamp_fifo(factory):
    engine = factory()
    order = []
    for i in range(50):
        engine.schedule_at(1000, order.append, i)
    # same-timestamp events scheduled *during* dispatch fire in the same
    # batch, after every earlier-scheduled equal-time event
    engine.schedule_at(1000, lambda: engine.schedule_at(
        1000, order.append, "late"))
    engine.schedule_at(1000, order.append, 50)
    engine.run()
    assert order == list(range(51)) + ["late"]
    assert engine.now == 1000


@pytest.mark.parametrize("factory", ENGINE_FACTORIES)
def test_far_future_heap_fallback_preserves_order(factory):
    engine = factory()
    order = []
    # far-future first (beyond any span at tiny shift), then near events
    engine.schedule_at(10_000_000, order.append, "far2")
    engine.schedule_at(9_999_999, order.append, "far1")
    for t in (5, 3, 9):
        engine.schedule_at(t, order.append, t)
    engine.run()
    assert order == [3, 5, 9, "far1", "far2"]
    assert engine.processed_events == 5


# ---------------------------------------------------------------------------
# lazy deletion / compaction (the Event.cancel leak fix)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("factory", ENGINE_FACTORIES + [LegacyEngine])
def test_cancel_compaction_bounds_queue(factory):
    engine = factory()
    handles = [engine.schedule_at(10_000 + i, lambda: None)
               for i in range(2000)]
    for handle in handles[:1990]:
        handle.cancel()
    # dead entries must have been compacted away, not accumulated:
    # >1000 cancelled with only 10 live crosses the half-queue threshold
    assert engine.pending() < 200
    engine.run()
    assert engine.processed_events == 10


@pytest.mark.parametrize("factory", ENGINE_FACTORIES + [LegacyEngine])
def test_cancelled_events_never_fire(factory):
    engine = factory()
    fired = []
    keep = engine.schedule_at(50, fired.append, "keep")
    for i in range(40):
        engine.schedule_at(50, fired.append, i).cancel()
    assert keep is not None
    engine.run()
    assert fired == ["keep"]


# ---------------------------------------------------------------------------
# pooling: recycled objects must never leak stale state
# ---------------------------------------------------------------------------

def test_event_pool_reuse_resets_state():
    engine = Engine()
    first = engine.schedule_at(5, lambda: None)
    first_args_id = id(first)
    engine.run()
    assert engine.pooled() >= 1
    # cancel-after-fire is a safe no-op (live flag), not a stale cancel
    first.cancel()
    reused = engine.schedule_at(7, len, (1, 2))
    assert reused is first            # recycled from the pool
    assert id(reused) == first_args_id
    assert reused.time == 7
    assert reused.fn is len
    assert reused.args == ((1, 2),)
    assert reused.cancelled is False
    assert reused.live is True
    engine.run()
    assert engine.processed_events == 2


def test_event_pool_reuse_after_cancel():
    engine = Engine()
    handle = engine.schedule_at(5, lambda: None)
    handle.cancel()
    engine.run()
    reused = engine.schedule_at(9, lambda: None)
    assert reused.cancelled is False and reused.live is True
    engine.run()
    assert engine.processed_events == 1


def test_request_pool_reuse_resets_state():
    pool = RequestPool(capacity=4)
    req = pool.acquire(0x1000, op=Op.WRITE_NT, issue_ps=77)
    req.accept_ps = 90
    req.complete_ps = 120
    req.annotate("k", 1)
    req.flight = object()
    old_id = req.req_id
    pool.release(req)
    recycled = pool.acquire(0x2000)
    assert recycled is req
    assert recycled.addr == 0x2000
    assert recycled.op is Op.READ
    assert recycled.issue_ps == 0
    assert recycled.accept_ps == 0 and recycled.complete_ps == 0
    assert recycled.meta is None
    assert recycled.flight is None
    assert recycled.req_id != old_id     # fresh id: indistinguishable from new


def test_request_pool_capacity_bound():
    pool = RequestPool(capacity=2)
    reqs = [Request(addr=i) for i in range(5)]
    for req in reqs:
        pool.release(req)
    assert len(pool) == 2


def test_request_is_slotted():
    req = Request(addr=0)
    assert not hasattr(req, "__dict__")
    with pytest.raises(AttributeError):
        req.arbitrary_attribute = 1


# ---------------------------------------------------------------------------
# calendar queue unit behaviour
# ---------------------------------------------------------------------------

def test_calendar_queue_len_and_compact():
    class Entry:
        __slots__ = ("time", "seq", "cancelled")

        def __init__(self, time, seq):
            self.time = time
            self.seq = seq
            self.cancelled = False

    queue = CalendarQueue(shift=2, span=4)
    entries = [Entry(t, i) for i, t in enumerate([5, 5, 9, 100, 10_000])]
    for entry in entries:
        queue.push(entry)
    assert len(queue) == 5
    entries[1].cancelled = True
    entries[3].cancelled = True
    assert queue.compact() == 2
    assert len(queue) == 3
    popped = [queue.pop() for _ in range(3)]
    assert [(e.time, e.seq) for e in popped] == [(5, 0), (9, 2), (10_000, 4)]
    assert queue.pop() is None
