"""Experiment harness integration: every figure/table runs and shows the
paper's qualitative result."""

import pytest

from repro.common.units import KIB, MIB
from repro.experiments import characterize as exp_characterize
from repro.experiments import fig01, fig03, fig05, fig06, fig07, fig09
from repro.experiments import fig10, fig11, fig12, fig13, tables
from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.runner import REGISTRY, run_experiment


class TestFig1:
    def test_bandwidth_inversion(self):
        result = fig01.run_bandwidth()
        assert result.metrics["pmep_store_over_nt"] > 1.5
        assert result.metrics["optane_nt_over_store"] > 1.5

    def test_latency_flat_vs_tiered(self):
        result = fig01.run_latency()
        assert result.metrics["pmep_flatness"] < 1.4
        assert result.metrics["vans_dynamic_range"] > 2.0


class TestFig3:
    def test_vans_beats_baselines(self):
        result = fig03.run_accuracy()
        assert result.metrics["vans_minus_best_baseline"] > 0.15

    def test_pcm_misses_buffer_tiers(self):
        result = fig03.run_pcm_latency()
        assert result.metrics["pcm_flatness"] < 2.0


class TestFig5:
    def test_inflections_at_planted_capacities(self):
        result = fig05.run_latency(block=64)
        assert result.metrics["read_inflections"] == str([16 * KIB, 16 * MIB])
        assert result.metrics["write_inflections"] == str([512, 4 * KIB])

    def test_raw_converges(self):
        result = fig05.run_raw()
        assert result.metrics["raw_over_rpw_small"] > 1.5
        assert result.metrics["raw_over_rpw_large"] < 1.2

    def test_tlb_flat(self):
        result = fig05.run_tlb()
        assert result.metrics["mpki_spread"] < 5.0


class TestFig6:
    def test_read_entry_sizes(self):
        result = fig06.run_read()
        assert result.metrics["rmw_entry_size"] == 256
        assert result.metrics["ait_entry_size"] == 4 * KIB

    def test_write_combine_size(self):
        result = fig06.run_write()
        assert result.metrics["lsq_combine_size"] == 256


class TestFig7:
    def test_interleave_period(self):
        result = fig07.run_interleaving()
        assert result.metrics["interleave_granularity"] == 4 * KIB
        assert result.metrics["speedup_at_16k"] > 1.0

    def test_overwrite_tails(self):
        result = fig07.run_tail_latency()
        assert result.metrics["tail_interval_iters"] == pytest.approx(
            14000, rel=0.1)
        assert result.metrics["tail_over_median"] > 20

    def test_wear_block_detected(self):
        result = fig07.run_tail_ratio()
        assert result.metrics["wear_block_detected"] == 64 * KIB

    def test_tlb_flat_during_overwrite(self):
        result = fig07.run_tlb()
        assert result.metrics["max_misses_after_warmup"] == 0


class TestFig8:
    def test_full_characterization_correct(self):
        result = exp_characterize.run()
        assert result.metrics["parameters_correct"] == \
            result.metrics["parameters_total"]


class TestFig9:
    def test_read_latency_accuracy(self):
        result = fig09.run_latency(ndimms=1)
        assert result.metrics["acc_lat_ld"] > 0.85

    def test_amplification_tracks_expectation(self):
        result = fig09.run_read_amplification()
        for _, measured, expected in result.rows:
            assert measured == pytest.approx(expected, abs=0.5)

    def test_overall_accuracy_near_paper(self):
        result = fig09.run_accuracy()
        # the paper reports 86.5%; we require the same ballpark
        assert result.metrics["average_accuracy"] > 0.75


class TestFig10:
    def test_capacity_invariance(self):
        result = fig10.run_capacity()
        assert result.metrics["max_relative_spread"] < 0.05

    def test_more_dimms_never_slower(self):
        result = fig10.run_dimm_count()
        for row in result.rows:
            assert row[4] <= row[1] * 1.02  # 6dimm <= 1dimm


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11.run(workloads=["gcc", "mcf", "lbm", "omnetpp"])

    def test_vans_more_accurate_than_ramulator(self, result):
        assert result.metrics["vans_speedup_accuracy_geomean"] > \
            result.metrics["ramulator_speedup_accuracy_geomean"]

    def test_speedups_below_one(self, result):
        for row in result.rows:
            assert row[5] < 1.0  # NVRAM slower than DRAM

    def test_memory_intensity_ordering(self, result):
        by_name = {row[0]: row for row in result.rows}
        assert by_name["mcf"][5] < by_name["omnetpp"][5]


class TestFig12:
    def test_redis_read_dominates(self):
        result = fig12.run_redis()
        ratios = dict((r[0], r[1]) for r in result.rows)
        assert ratios["cpi"] > 4
        assert ratios["llc_miss"] > 2
        assert ratios["tlb_miss"] > 2

    def test_ycsb_hot_lines(self):
        result = fig12.run_ycsb()
        rows = {r[0]: r for r in result.rows}
        assert rows["writes per line"][3] > 50
        top_migrations = rows["wear migrations"][1]
        rest_migrations = rows["wear migrations"][2]
        assert top_migrations > rest_migrations


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13.run(workloads=["ycsb", "linkedlist"])

    def test_pretranslation_helps_pointer_chasing(self, result):
        by_name = {row[0]: row for row in result.rows}
        assert by_name["linkedlist"][2] > 1.2

    def test_lazy_helps_hot_writes(self, result):
        by_name = {row[0]: row for row in result.rows}
        assert by_name["ycsb"][1] > 1.05

    def test_tlb_mpki_reduced(self, result):
        assert result.metrics["tlb_mpki_mean_ratio"] < 0.95


class TestTables:
    def test_table4_calibration(self):
        result = tables.run_table4()
        assert result.metrics["worst_relative_mpki_error"] < 0.35

    def test_table5_reports_config(self):
        result = tables.run_table5()
        rendered = result.render()
        assert "16K" in rendered and "16M" in rendered

    def test_static_tables(self):
        t1 = tables.run_table1()
        t2 = tables.run_table2()
        assert len(t1.rows) == 4
        assert len(t2.rows) == 8


class TestRunner:
    def test_registry_covers_all_figures(self):
        paper_artifacts = {"fig1", "fig3", "fig5", "fig6", "fig7", "fig8",
                           "fig9", "fig10", "fig11", "fig12", "fig13",
                           "tables"}
        assert paper_artifacts <= set(REGISTRY)
        assert {"scaling", "ablation"} <= set(REGISTRY)

    def test_run_experiment_returns_results(self):
        results = run_experiment("fig1", Scale.SMOKE)
        assert all(isinstance(r, ExperimentResult) for r in results)
        assert len(results) == 2

    def test_render_produces_table(self):
        result = fig01.run_bandwidth()
        text = result.render()
        assert "fig1a" in text
        assert "store-nt" in text
