"""Bandwidth matrix experiment."""

import pytest

from repro.experiments import bandwidth_matrix
from repro.experiments.common import Scale


@pytest.fixture(scope="module")
def result():
    return bandwidth_matrix.run(Scale.SMOKE)


def test_sequential_writes_far_exceed_random(result):
    assert result.metrics["seq_over_rand_write"] > 5


def test_mixed_underperforms_pure_average(result):
    """The Section III-C / FIRM observation: mixed read/write streams
    on NVRAM do worse than the mean of their pure components."""
    assert result.metrics["mixed_vs_pure_avg"] < 0.9


def test_nvram_trails_dram_on_reads(result):
    rows = {(r[0], r[1]): r for r in result.rows}
    assert rows[("seq", "read")][3] > rows[("seq", "read")][2]


def test_all_cells_positive(result):
    for row in result.rows:
        assert row[2] > 0 and row[3] > 0
