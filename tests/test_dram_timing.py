"""DDR timing parameter sets."""

import pytest

from repro.common.errors import ConfigError
from repro.dram.timing import DDR3_1600, DDR4_2400, DDR4_2666, DDR4Timing, PCM_TIMING


def test_ddr4_2666_matches_table_v():
    t = DDR4_2666
    assert (t.cl, t.trcd, t.trp, t.tras) == (19, 19, 19, 43)
    assert t.tck_ps == 750


def test_trc_composition():
    assert DDR4_2666.trc == DDR4_2666.tras + DDR4_2666.trp


def test_burst_cycles_bl8():
    assert DDR4_2666.burst_cycles == 4


def test_ps_conversion():
    assert DDR4_2666.ps(10) == 7500


def test_read_latency():
    t = DDR4_2666
    assert t.read_latency_ps() == t.ps(t.cl + t.burst_cycles)


def test_pcm_is_stretched_ddr4():
    assert PCM_TIMING.trcd > DDR4_2666.trcd
    assert PCM_TIMING.twr > DDR4_2666.twr
    assert PCM_TIMING.tck_ps == DDR4_2666.tck_ps  # same bus clock


def test_scaled_helper():
    slow = DDR4_2666.scaled("slow", read_scale=2.0, write_scale=3.0)
    assert slow.trcd == DDR4_2666.trcd * 2
    assert slow.twr == DDR4_2666.twr * 3
    assert slow.name == "slow"


def test_ddr3_slower_clock():
    assert DDR3_1600.tck_ps > DDR4_2400.tck_ps > DDR4_2666.tck_ps


def test_invalid_timing_rejected():
    with pytest.raises(ConfigError):
        DDR4Timing(name="bad", tck_ps=0, burst_length=8, cl=10, cwl=9,
                   trcd=10, trp=10, tras=20, trrd=4, tfaw=20, tccd=4,
                   twr=10, twtr=5, trtp=5, trefi=1000, trfc=100)
    with pytest.raises(ConfigError):
        DDR4Timing(name="bad", tck_ps=750, burst_length=8, cl=10, cwl=9,
                   trcd=30, trp=10, tras=20, trrd=4, tfaw=20, tccd=4,
                   twr=10, twtr=5, trtp=5, trefi=1000, trfc=100)
