"""Fault plans, the injector, and the repro-faults CLI."""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import FaultPlanError
from repro.experiments.common import Scale
from repro.experiments.export import result_to_dict
from repro.experiments.runner import run_experiment
from repro.faults import (
    NULL_FAULTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    current,
    power_cut_plan,
    random_plan,
    session,
    validate_plan,
)
from repro.tools import faults_cli


# -- hypothesis strategies: only well-formed specs --------------------------

_trigger = st.one_of(
    st.tuples(st.integers(0, 10**12), st.none()),
    st.tuples(st.none(), st.integers(1, 10**6)),
    st.tuples(st.none(), st.none()),
)
_factor = st.floats(min_value=1.0, max_value=8.0,
                    allow_nan=False, allow_infinity=False)


@st.composite
def fault_specs(draw):
    kind = draw(st.sampled_from(("power_cut", "media_ue", "media_slow",
                                 "link_degrade")))
    if kind == "power_cut":
        at_ps, at_request = draw(_trigger.filter(
            lambda t: t != (None, None)))
        return FaultSpec(kind=kind, at_ps=at_ps, at_request=at_request)
    at_ps, at_request = draw(_trigger)
    duration = draw(st.integers(0, 10**12))
    extra = draw(st.integers(1, 10**9))   # >=1 so every episode injects
    if kind == "media_ue":
        lo = draw(st.integers(0, 2**40 - 2))
        hi = draw(st.integers(lo + 1, 2**40))
        return FaultSpec(kind=kind, at_ps=at_ps, at_request=at_request,
                         duration_ps=duration, addr_lo=lo, addr_hi=hi,
                         extra_ps=extra)
    if kind == "link_degrade":
        channel = draw(st.one_of(st.none(), st.integers(0, 5)))
        return FaultSpec(kind=kind, at_ps=at_ps, at_request=at_request,
                         duration_ps=duration, extra_ps=extra,
                         factor=draw(_factor), channel=channel)
    return FaultSpec(kind=kind, at_ps=at_ps, at_request=at_request,
                     duration_ps=duration, extra_ps=extra,
                     factor=draw(_factor))


fault_plans = st.builds(
    FaultPlan,
    specs=st.lists(fault_specs(), max_size=6).map(tuple),
    seed=st.integers(0, 2**31),
    description=st.text(
        st.characters(min_codepoint=32, max_codepoint=126), max_size=40),
)


class TestPlanRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(fault_plans)
    def test_json_round_trip_is_identity(self, plan):
        doc = json.loads(json.dumps(plan.to_dict()))
        assert validate_plan(doc) == []
        assert FaultPlan.from_dict(doc) == plan

    @settings(max_examples=60, deadline=None)
    @given(fault_specs())
    def test_specs_self_validate(self, spec):
        assert spec.problems() == []

    def test_random_plan_reproducible(self):
        assert random_plan(7).to_dict() == random_plan(7).to_dict()
        assert random_plan(7).to_dict() != random_plan(8).to_dict()

    def test_save_load_round_trip(self, tmp_path):
        from repro.faults import load_plan, save_plan
        plan = random_plan(3)
        path = str(tmp_path / "plan.json")
        save_plan(plan, path)
        assert load_plan(path) == plan


class TestPlanValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="meteor_strike", at_ps=1)

    def test_power_cut_needs_a_trigger(self):
        with pytest.raises(FaultPlanError, match="at_ps or at_request"):
            FaultSpec(kind="power_cut")

    def test_triggers_mutually_exclusive(self):
        with pytest.raises(FaultPlanError, match="mutually exclusive"):
            FaultSpec(kind="power_cut", at_ps=1, at_request=1)

    def test_media_ue_needs_region(self):
        with pytest.raises(FaultPlanError, match="addr_hi > addr_lo"):
            FaultSpec(kind="media_ue", at_ps=0, addr_lo=64, addr_hi=64)

    def test_noop_episode_rejected(self):
        with pytest.raises(FaultPlanError, match="injects nothing"):
            FaultSpec(kind="media_slow", at_ps=0)

    def test_validate_plan_flags_bad_documents(self):
        assert validate_plan({}) != []
        assert validate_plan({"schema": "repro.faultplan/1",
                              "faults": "nope"}) != []
        assert any("unknown" in p for p in validate_plan(
            {"schema": "repro.faultplan/1",
             "faults": [{"kind": "power_cut", "at_ps": 1, "zap": 1}]}))


def _deterministic_dict(result):
    doc = result_to_dict(result)
    doc.pop("wall_s")
    doc.pop("faults")
    return doc


class TestNullInjector:
    def test_null_faults_is_disabled_and_inert(self):
        assert NULL_FAULTS.enabled is False
        assert NULL_FAULTS.media_extra_ps(0, False, 0, 100) == 0
        assert NULL_FAULTS.link_extra_ps(0, 0, 100) == 0
        assert NULL_FAULTS.migration_extra_ps(0, 100) == 0
        NULL_FAULTS.on_request(5)     # all no-ops
        NULL_FAULTS.note_fence(5)

    def test_no_session_means_null(self):
        assert current() is NULL_FAULTS
        injector = FaultInjector(power_cut_plan(at_ps=1))
        with session(injector):
            assert current() is injector
        assert current() is NULL_FAULTS

    def test_empty_plan_bit_identical_to_no_faults(self):
        bare = run_experiment("fig1", Scale.SMOKE)
        empty = run_experiment("fig1", Scale.SMOKE, faults=FaultPlan())
        assert [_deterministic_dict(r) for r in bare] == \
               [_deterministic_dict(r) for r in empty]
        assert all(r.faults["summary"]["plan_faults"] == 0 for r in empty)


class TestInjectorEpisodes:
    def test_media_slow_stretches_only_in_window(self):
        plan = FaultPlan(specs=(FaultSpec(
            kind="media_slow", at_ps=1000, duration_ps=1000,
            factor=3.0, extra_ps=7),))
        injector = FaultInjector(plan)
        assert injector.media_extra_ps(0, False, 999, 100) == 0
        assert injector.media_extra_ps(0, False, 1500, 100) == 207
        assert injector.media_extra_ps(0, False, 2001, 100) == 0

    def test_media_ue_hits_reads_in_region_only(self):
        plan = FaultPlan(specs=(FaultSpec(
            kind="media_ue", at_ps=0, addr_lo=4096, addr_hi=8192,
            extra_ps=500),))
        injector = FaultInjector(plan)
        assert injector.media_extra_ps(4096, False, 10, 100) == 500
        assert injector.media_extra_ps(4096, True, 10, 100) == 0
        assert injector.media_extra_ps(0, False, 10, 100) == 0
        assert injector.counters["ue_hits"] == 1

    def test_link_degrade_filters_by_channel(self):
        plan = FaultPlan(specs=(FaultSpec(
            kind="link_degrade", at_ps=0, factor=2.0, channel=1),))
        injector = FaultInjector(plan)
        assert injector.link_extra_ps(1, 10, 100) == 100
        assert injector.link_extra_ps(0, 10, 100) == 0

    def test_power_cut_at_request_fires_once(self):
        injector = FaultInjector(power_cut_plan(at_request=3))
        for now in (10, 20, 30, 40):
            injector.on_request(now)
        assert injector.cut_ps == 30
        assert injector.counters["power_cuts"] == 1
        assert injector.summary()["requests"] == 4


class TestFaultsCli:
    def test_example_and_check(self, tmp_path, capsys):
        assert faults_cli.main(["--example"]) == 0
        plan_doc = capsys.readouterr().out
        path = tmp_path / "plan.json"
        path.write_text(plan_doc)
        assert faults_cli.main(["--check", str(path)]) == 0

    def test_check_rejects_invalid(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "nope"}')
        assert faults_cli.main(["--check", str(path)]) == 2

    def test_usage_errors_exit_2(self, capsys):
        assert faults_cli.main([]) == 2                    # no plan
        assert faults_cli.main(["--power-cut-at-ps", "1",
                                "--target", "nosuch"]) == 2

    def test_power_cut_run_writes_valid_report(self, tmp_path, capsys):
        from repro.faults import validate_fault_report
        report_path = tmp_path / "report.json"
        code = faults_cli.main([
            "--power-cut-at-request", "300", "--target", "vans",
            "--writes", "600", "--migrate-threshold", "50",
            "--json", str(report_path), "--fail-on-lost"])
        assert code == 0      # fenced vans loses nothing
        doc = json.loads(report_path.read_text())
        assert validate_fault_report(doc) == []
        assert doc["persistence"]["lost_count"] == 0
        assert faults_cli.main(["--check-report", str(report_path)]) == 0

    def test_fail_on_lost_exits_3_for_lazy(self, capsys):
        code = faults_cli.main([
            "--power-cut-at-request", "300", "--target", "vans-lazy",
            "--writes", "600", "--migrate-threshold", "50",
            "--fail-on-lost"])
        assert code == 3
        out = capsys.readouterr()
        assert "lazy_dirty" in out.out
        assert "lost" in out.err


class TestObservabilityWiring:
    def test_counters_published_once_onto_first_bus(self):
        from repro import registry
        injector = FaultInjector(power_cut_plan(at_request=10**9))
        with session(injector):
            first = registry.build("vans", migrate_threshold=50)
            second = registry.build("vans-lazy", migrate_threshold=50)
        assert injector.published is True
        first_snap = first.instrument_snapshot()
        assert "faults.power_cuts" in first_snap
        assert "faults.requests" in first_snap
        # only the first system carries the gauges, so merged collection
        # snapshots (which sum per path) count each fault exactly once
        assert not any(k.startswith("faults.")
                       for k in second.instrument_snapshot())

    def test_empty_plan_publishes_no_gauges(self):
        from repro import registry
        injector = FaultInjector(FaultPlan())
        with session(injector):
            system = registry.build("vans")
        assert injector.published is False
        assert not any(k.startswith("faults.")
                       for k in system.instrument_snapshot())

    def test_power_cut_emits_one_flight_instant(self):
        from repro.flight.recorder import FlightRecorder
        from repro.flight.recorder import session as flight_session
        injector = FaultInjector(power_cut_plan(at_request=2))
        recorder = FlightRecorder()
        with flight_session(recorder):
            recorder.begin("write", 0x0, issue_ps=0)
            for now in (10, 20, 30):
                injector.on_request(now)
            recorder.end(40)
        instants = [i for r in recorder.records for i in r.instants
                    if i.station == "faults"]
        assert len(instants) == 1
        assert instants[0].name == "power_cut"
        assert instants[0].ts_ps == 20


class TestRunnerFaultsIntegration:
    def test_run_experiment_attaches_fault_report(self):
        plan = dataclasses.replace(power_cut_plan(at_request=500), seed=9)
        results = run_experiment("fig1", Scale.SMOKE, faults=plan.to_dict())
        for result in results:
            assert result.faults["schema"] == "repro.faultreport/1"
            assert result.faults["summary"]["seed"] == 9
            assert result.faults["summary"]["counters"]["power_cuts"] == 1
            assert "persistence" in result.faults


class TestRandomPlanEdges:
    def test_zero_horizon_plan_is_well_formed(self):
        plan = random_plan(0, horizon_ps=0)
        assert validate_plan(plan.to_dict()) == []
        cuts = [s for s in plan.specs if s.kind == "power_cut"]
        assert len(cuts) == 1
        # episode windows degrade gracefully to 1-ps durations
        for spec in plan.specs:
            if spec.kind != "power_cut" and spec.duration_ps is not None:
                assert spec.duration_ps >= 0

    def test_zero_horizon_deterministic(self):
        assert random_plan(3, horizon_ps=0).to_dict() == \
               random_plan(3, horizon_ps=0).to_dict()

    def test_duplicate_cut_times_keep_earliest(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="power_cut", at_ps=9_000),
            FaultSpec(kind="power_cut", at_ps=3_000),
            FaultSpec(kind="power_cut", at_ps=3_000),
        ))
        injector = FaultInjector(plan)
        assert injector.cut_ps == 3_000

    def test_equal_cut_times_are_one_cut(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="power_cut", at_ps=7_000),
            FaultSpec(kind="power_cut", at_ps=7_000),
        ))
        injector = FaultInjector(plan)
        assert injector.cut_ps == 7_000
        for now in (6_000, 7_000, 8_000):
            injector.on_request(now)
        assert injector.counters["power_cuts"] == 1

    def test_cut_at_ordinal_zero_rejected(self):
        with pytest.raises(FaultPlanError, match="at_request"):
            FaultSpec(kind="power_cut", at_request=0)
