"""FCFS queueing algebra: Server, BankedServer, FcfsStation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.engine.queueing import BankedServer, FcfsStation, Server


class TestServer:
    def test_idle_server_serves_immediately(self):
        server = Server()
        assert server.serve(100, 50) == 150

    def test_busy_server_queues(self):
        server = Server()
        server.serve(0, 100)
        assert server.serve(10, 50) == 150  # starts at 100

    def test_gap_leaves_server_idle(self):
        server = Server()
        server.serve(0, 10)
        assert server.serve(100, 10) == 110

    def test_utilization(self):
        server = Server()
        server.serve(0, 30)
        server.serve(50, 20)
        assert server.utilization(100) == pytest.approx(0.5)
        assert server.served == 2

    def test_reset(self):
        server = Server()
        server.serve(0, 100)
        server.reset()
        assert server.busy_until == 0
        assert server.served == 0

    @given(st.lists(st.tuples(st.integers(0, 10**6), st.integers(1, 10**4)),
                    min_size=1, max_size=60))
    def test_completions_monotonic_for_sorted_arrivals(self, jobs):
        """FCFS invariant: sorted arrivals produce sorted completions."""
        jobs = sorted(jobs)
        server = Server()
        completions = [server.serve(arr, svc) for arr, svc in jobs]
        assert completions == sorted(completions)
        for (arr, svc), done in zip(jobs, completions):
            assert done >= arr + svc


class TestBankedServer:
    def test_independent_banks(self):
        banks = BankedServer(4)
        a = banks.serve(0, 0, 100)
        b = banks.serve(1, 0, 100)
        assert a == b == 100  # different banks do not contend

    def test_same_bank_contends(self):
        banks = BankedServer(4)
        banks.serve(2, 0, 100)
        assert banks.serve(2, 0, 100) == 200

    def test_bank_wraps_modulo(self):
        banks = BankedServer(4)
        banks.serve(1, 0, 100)
        assert banks.serve(5, 0, 100) == 200  # 5 % 4 == 1

    def test_rejects_zero_banks(self):
        with pytest.raises(ConfigError):
            BankedServer(0)

    def test_served_total(self):
        banks = BankedServer(2)
        for i in range(6):
            banks.serve(i, 0, 1)
        assert banks.served == 6


class TestFcfsStation:
    def test_admits_when_space(self):
        station = FcfsStation(2)
        assert station.admit(100) == 100
        station.retire_at(500)

    def test_blocks_when_full(self):
        station = FcfsStation(2)
        station.admit(0)
        station.retire_at(100)
        station.admit(0)
        station.retire_at(200)
        # third entry must wait for the oldest to retire
        assert station.admit(10) == 100

    def test_expired_entries_free_slots(self):
        station = FcfsStation(1)
        station.admit(0)
        station.retire_at(50)
        assert station.admit(60) == 60  # slot already free

    def test_occupancy(self):
        station = FcfsStation(4)
        for _ in range(3):
            station.admit(0)
            station.retire_at(1000)
        assert station.occupancy(10) == 3
        assert station.occupancy(1001) == 0

    def test_drain_time(self):
        station = FcfsStation(4)
        station.admit(0)
        station.retire_at(300)
        station.admit(0)
        station.retire_at(700)
        assert station.drain_time(10) == 700
        assert station.drain_time(800) == 800

    def test_retire_clamps_monotonic(self):
        station = FcfsStation(4)
        station.admit(0)
        station.retire_at(500)
        station.admit(0)
        station.retire_at(100)  # would violate FCFS drain order
        assert station.drain_time(0) == 500

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError):
            FcfsStation(0)

    def test_wait_accounting(self):
        station = FcfsStation(1)
        station.admit(0)
        station.retire_at(100)
        station.admit(20)  # waits 80
        assert station.total_wait == 80

    @settings(max_examples=50)
    @given(capacity=st.integers(1, 8),
           jobs=st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 500)),
                         min_size=1, max_size=40))
    def test_admission_invariants(self, capacity, jobs):
        """Admissions never precede arrival; occupancy never exceeds
        capacity; with sorted arrivals admissions are monotone."""
        jobs = sorted(jobs)
        station = FcfsStation(capacity)
        admits = []
        for arrival, service in jobs:
            admit = station.admit(arrival)
            assert admit >= arrival
            station.retire_at(admit + service)
            admits.append(admit)
        assert admits == sorted(admits)
        # the bounded buffer never held more than its capacity
        assert station.peak_occupancy <= capacity
