"""Session scheduler: fairness, quotas, backpressure, drain — plus the
real worker pool's watchdog/respawn/shutdown behavior.

Scheduler tests use a fake pool so every dispatch decision is
deterministic and observable through ``dispatch_log``; the pool tests
spawn real worker processes (small and short-lived).
"""

from __future__ import annotations

import threading

import pytest

from repro.common.errors import QuotaExceededError
from repro.serve.pool import WorkerPool
from repro.serve.scheduler import SessionScheduler, TenantQuota


class FakePool:
    """Deterministic stand-in: jobs finish only when the test says so."""

    def __init__(self, slots: int = 1) -> None:
        self.slots = slots
        self.running = []          # (job, done) in dispatch order

    def free_slots(self) -> int:
        return self.slots - len(self.running)

    def submit(self, job, done, timeout_s=None) -> None:
        assert self.free_slots() > 0, "scheduler over-dispatched"
        self.running.append((job, done))

    def finish(self, index: int = 0, outcome=("ok", {})) -> None:
        job, done = self.running.pop(index)
        done(outcome)

    def finish_all(self) -> None:
        while self.running:
            self.finish(0)


def collector():
    outcomes = []
    return outcomes, lambda outcome: outcomes.append(outcome)


class TestFairness:
    def test_round_robin_under_mixed_tenant_load(self):
        """A tenant dumping a deep backlog cannot starve a light one."""
        pool = FakePool(slots=1)
        sched = SessionScheduler(pool, TenantQuota(max_active=4,
                                                   max_queued=16))
        _, done = collector()
        sched.submit("x", {"blocker": True}, done)   # occupies the slot
        for i in range(3):
            sched.submit("hog", {"n": i}, done)
        for i in range(2):
            sched.submit("mouse", {"n": i}, done)
        pool.finish_all()
        assert list(sched.dispatch_log) == ["x", "hog", "mouse", "hog",
                                            "mouse", "hog"]
        assert sched.dispatch_log_total == 6
        assert sched.stats["completed"] == 6
        assert sched.queued() == 0 and sched.active() == 0

    def test_single_tenant_uses_all_slots(self):
        pool = FakePool(slots=3)
        sched = SessionScheduler(pool, TenantQuota(max_active=3,
                                                   max_queued=8))
        _, done = collector()
        for i in range(5):
            sched.submit("solo", {"n": i}, done)
        assert len(pool.running) == 3
        assert sched.queued("solo") == 2
        pool.finish_all()
        assert sched.stats["completed"] == 5

    def test_dispatch_order_preserved_within_tenant(self):
        pool = FakePool(slots=1)
        sched = SessionScheduler(pool, TenantQuota(max_active=2,
                                                   max_queued=8))
        seen, done = collector()
        for i in range(4):
            sched.submit("t", {"n": i}, lambda o, i=i: seen.append(i))
        pool.finish_all()
        assert seen == [0, 1, 2, 3]
        del done


class TestQuotas:
    def test_max_active_caps_a_tenant_below_pool_size(self):
        pool = FakePool(slots=4)
        sched = SessionScheduler(pool, TenantQuota(max_active=1,
                                                   max_queued=8))
        _, done = collector()
        for i in range(3):
            sched.submit("capped", {"n": i}, done)
        assert sched.active("capped") == 1      # slots free, quota not
        assert sched.queued("capped") == 2
        pool.finish(0)
        assert sched.active("capped") == 1      # refilled one at a time
        pool.finish_all()
        assert sched.stats["completed"] == 3

    def test_per_tenant_quota_override(self):
        pool = FakePool(slots=4)
        sched = SessionScheduler(pool, TenantQuota(max_active=1,
                                                   max_queued=8))
        sched.set_quota("vip", TenantQuota(max_active=3, max_queued=8))
        _, done = collector()
        for i in range(3):
            sched.submit("vip", {"n": i}, done)
        assert sched.active("vip") == 3
        pool.finish_all()


class TestBackpressure:
    def test_queue_overflow_rejected_with_429(self):
        pool = FakePool(slots=0)                 # nothing ever dispatches
        sched = SessionScheduler(pool, TenantQuota(max_active=1,
                                                   max_queued=2))
        _, done = collector()
        sched.submit("t", {"n": 0}, done)
        sched.submit("t", {"n": 1}, done)
        with pytest.raises(QuotaExceededError) as exc_info:
            sched.submit("t", {"n": 2}, done)
        assert exc_info.value.code == 429
        assert "queue full" in str(exc_info.value)
        assert sched.stats["rejected"] == 1
        assert sched.queued("t") == 2            # rejected job not queued

    def test_rejection_is_per_tenant(self):
        pool = FakePool(slots=0)
        sched = SessionScheduler(pool, TenantQuota(max_active=1,
                                                   max_queued=1))
        _, done = collector()
        sched.submit("a", {}, done)
        with pytest.raises(QuotaExceededError):
            sched.submit("a", {}, done)
        sched.submit("b", {}, done)              # other tenants unaffected


class TestDrain:
    def test_drain_rejects_new_work_and_waits_for_idle(self):
        pool = FakePool(slots=1)
        sched = SessionScheduler(pool, TenantQuota())
        _, done = collector()
        sched.submit("t", {}, done)
        assert sched.drain(timeout_s=0.05) is False   # job still running
        with pytest.raises(QuotaExceededError) as exc_info:
            sched.submit("t", {}, done)
        assert "draining" in str(exc_info.value)
        pool.finish_all()
        assert sched.drain(timeout_s=5) is True
        assert sched.snapshot()["draining"] is True

    def test_drain_on_idle_scheduler_returns_immediately(self):
        sched = SessionScheduler(FakePool(slots=1), TenantQuota())
        assert sched.drain(timeout_s=0.1) is True


class TestWorkerPool:
    """Real processes: keep them few and the jobs tiny."""

    @pytest.fixture()
    def pool(self):
        pool = WorkerPool(workers=1, warm_cache=2)
        yield pool
        pool.shutdown()
        assert pool.processes_alive() == 0

    def settle(self, pool, job, timeout_s=None):
        outcome = []
        settled = threading.Event()

        def done(result):
            outcome.append(result)
            settled.set()

        pool.submit(job, done, timeout_s=timeout_s)
        assert settled.wait(timeout=60), "job never settled"
        return outcome[0]

    def test_ping_round_trip(self, pool):
        status, payload = self.settle(pool, {"kind": "ping"})
        assert status == "ok"
        assert payload["pong"] is True

    def test_unknown_experiment_rejected_with_suggestion(self, pool):
        status, payload = self.settle(
            pool, {"kind": "experiment", "experiment": "fig99",
                   "scale": "smoke", "seed": 1})
        assert status == "reject"
        assert payload["code"] == 2
        assert "did you mean" in payload["error"]

    def test_worker_death_respawns_process(self, pool):
        status, payload = self.settle(pool, {"kind": "_test_die"})
        assert status == "error"
        assert "died" in payload
        # watcher replaced the corpse with a live process
        assert pool.processes_alive() == 1
        assert pool.stats["respawned"] >= 1
        # and the pool still serves jobs afterwards
        status, _ = self.settle(pool, {"kind": "ping"})
        assert status == "ok"

    def test_watchdog_times_out_stuck_job(self, pool):
        status, payload = self.settle(
            pool, {"kind": "_test_sleep", "seconds": 30},
            timeout_s=0.5)
        assert status == "timeout"
        assert pool.stats["timeouts"] == 1
        # respawned worker keeps working
        status, _ = self.settle(pool, {"kind": "ping"})
        assert status == "ok"

    def test_shutdown_is_idempotent_and_leaves_nothing(self):
        pool = WorkerPool(workers=2, warm_cache=0)
        assert pool.processes_alive() == 2
        pool.shutdown()
        pool.shutdown()
        assert pool.processes_alive() == 0
        assert pool.free_slots() == 0
        with pytest.raises(RuntimeError):
            pool.submit({"kind": "ping"}, lambda outcome: None)
