"""Wear-leveling engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.common.units import KIB, MIB, US
from repro.media.wear import WearConfig, WearLeveler


def make(threshold=100, capacity=16 * MIB, decay=0, track=False):
    return WearLeveler(
        WearConfig(migrate_threshold=threshold, decay_window_writes=decay),
        capacity_bytes=capacity,
        track_line_wear=track,
    )


def test_migration_after_threshold_writes():
    wear = make(threshold=10)
    migrated = []
    for i in range(10):
        _, m = wear.on_write(0, i * 1000)
        migrated.append(m)
    assert migrated == [False] * 9 + [True]
    assert wear.migrations == 1


def test_migration_stalls_subsequent_writes():
    wear = make(threshold=2)
    wear.on_write(0, 0)
    end, migrated = wear.on_write(0, 10)
    assert migrated
    assert end == 10 + wear.config.migration_ps
    ready, _ = wear.on_write(0, 20)
    assert ready == end  # blocked behind the migration


def test_reads_stall_during_migration():
    wear = make(threshold=1)
    end, _ = wear.on_write(0, 0)
    assert wear.on_read(0, 100) == end
    assert wear.on_read(0, end + 1) == end + 1


def test_migration_remaps_block():
    wear = make(threshold=1)
    before = wear.translate(100)
    wear.on_write(0, 0)
    after = wear.translate(100)
    assert before != after
    assert after % wear.config.block_bytes == 100  # offset preserved


def test_translate_within_capacity():
    wear = make(threshold=1, capacity=1 * MIB)
    for i in range(40):
        wear.on_write(0, i)
    assert 0 <= wear.translate(0) < 1 * MIB


def test_counts_reset_after_migration():
    wear = make(threshold=5)
    for i in range(5):
        wear.on_write(0, i)
    assert wear.block_write_count(0) == 0


def test_different_blocks_independent():
    wear = make(threshold=10)
    block = 64 * KIB
    for i in range(9):
        wear.on_write(0, i)
        wear.on_write(block, i)
    assert wear.migrations == 0
    assert wear.block_write_count(0) == 9
    assert wear.block_write_count(block) == 9


def test_spreading_prevents_migration_quantization():
    """The Figure 7c mechanism: same volume over 2 blocks, each below
    threshold, yields zero migrations."""
    wear = make(threshold=100)
    for i in range(150):
        wear.on_write((i % 2) * 64 * KIB, i)
    assert wear.migrations == 0
    wear2 = make(threshold=100)
    for i in range(150):
        wear2.on_write(0, i)
    assert wear2.migrations == 1


def test_decay_halves_counters():
    wear = make(threshold=1000, decay=10)
    for i in range(10):
        wear.on_write(0, i)
    assert wear.block_write_count(0) < 10


def test_line_wear_tracking():
    wear = make(track=True)
    for _ in range(3):
        wear.on_write(512, 0)
    wear.on_write(0, 0)
    top = wear.top_written_lines(1)
    assert top == [(512, 3)]


def test_migration_counts_per_block():
    wear = make(threshold=2)
    for i in range(4):
        wear.on_write(0, i * US)
    assert wear.migration_counts.get(0) == 2


def test_invalid_config():
    with pytest.raises(ConfigError):
        WearConfig(block_bytes=100)
    with pytest.raises(ConfigError):
        WearConfig(migrate_threshold=0)


def test_reset():
    wear = make(threshold=1, track=True)
    wear.on_write(0, 0)
    wear.reset()
    assert wear.migrations == 0
    assert wear.translate(0) == 0
    assert wear.line_wear == {}


@settings(max_examples=40)
@given(st.lists(st.integers(0, 8), min_size=1, max_size=300),
       st.integers(2, 50))
def test_migrations_bounded_by_write_counts(blocks, threshold):
    """Property: total migrations == sum over blocks of
    floor(writes/threshold) when writes arrive in time order."""
    wear = make(threshold=threshold)
    counts = {}
    now = 0
    for b in blocks:
        addr = b * 64 * KIB
        ready, _ = wear.on_write(addr, now)
        now = max(now, ready) + 1
        counts[b] = counts.get(b, 0) + 1
    expected = sum(c // threshold for c in counts.values())
    assert wear.migrations == expected
