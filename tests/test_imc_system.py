"""iMC + VansSystem front end."""

import pytest

from repro.common.units import KIB, NS
from repro.vans import VansConfig, VansSystem
from repro.vans.imc import IntegratedMemoryController


class TestImc:
    def test_write_accept_is_wpq_admission(self):
        imc = IntegratedMemoryController(VansConfig())
        accept = imc.write(0, 100)
        assert accept == 100  # empty WPQ admits immediately

    def test_wpq_backpressure_after_capacity(self):
        imc = IntegratedMemoryController(VansConfig())
        accepts = [imc.write(i * 64, 0) for i in range(12)]
        # the first 8 (512B) admit at once; later ones wait on the drain
        assert accepts[7] == 0
        assert accepts[8] > 0
        assert accepts == sorted(accepts)

    def test_fence_drains_everything(self):
        imc = IntegratedMemoryController(VansConfig())
        now = 0
        for i in range(4):
            now = imc.write(i * 64, now)
        done = imc.fence(now)
        assert done > now
        assert imc.fence(done) == done  # second fence is free

    def test_interleaved_writes_spread_wpqs(self):
        imc = IntegratedMemoryController(VansConfig().with_dimms(6))
        imc.write(0, 0)
        imc.write(4 * KIB, 0)
        assert imc.wpqs[0].admitted == 1
        assert imc.wpqs[1].admitted == 1

    def test_read_counters(self):
        imc = IntegratedMemoryController(VansConfig())
        imc.read(0, 0)
        assert imc.stats.snapshot()["imc.reads"] == 1


class TestVansSystem:
    def test_read_includes_frontend(self, vans):
        done = vans.read(0, 0)
        assert done > vans.config.dimm.timing.frontend_read_ps

    def test_write_latency_much_smaller_than_read(self, vans):
        w = vans.write(0, 0)
        r = VansSystem().read(0, 0)
        assert w < r

    def test_submit_read_request(self, vans):
        from repro.engine.request import Op, Request
        req = vans.submit(Request(addr=128, op=Op.READ, issue_ps=0))
        assert req.complete_ps > 0
        assert req.latency_ps == req.complete_ps

    def test_submit_fence(self, vans):
        from repro.engine.request import Op, Request
        vans.write(0, 0)
        req = vans.submit(Request(addr=0, op=Op.FENCE, issue_ps=100))
        assert req.complete_ps >= 100

    def test_latency_histograms_collected(self, vans):
        vans.read(0, 0)
        vans.write(64, 10**6)
        assert vans.stats.histogram("vans.read_latency_ps").count == 1
        assert vans.stats.histogram("vans.write_latency_ps").count == 1

    def test_warm_fill_single_dimm(self, vans):
        vans.warm_fill(0, 16 * KIB)
        t = vans.read(0, 0)
        t2 = VansSystem().read(0, 0)
        assert t < t2  # warm hit vs cold miss

    def test_warm_fill_interleaved(self):
        system = VansSystem(VansConfig().with_dimms(6))
        system.warm_fill(0, 64 * KIB)
        hits_possible = sum(len(d._ait_tags) for d in system.imc.dimms)
        assert hits_possible >= 16  # 64KB = 16 pages spread over dimms

    def test_reset_state(self, vans):
        vans.warm_fill(0, 16 * KIB)
        vans.reset_state()
        assert len(vans.dimm._rmw_tags) == 0

    def test_name_reflects_dimms(self):
        assert VansSystem(VansConfig().with_dimms(6)).name == "vans-6dimm"

    def test_counters_exposed(self, vans):
        vans.read(0, 0)
        assert vans.counters()["dimm.reads"] == 1

    def test_interleaving_speeds_up_scattered_writes(self):
        def burst_time(ndimms):
            cfg = VansConfig().with_dimms(ndimms)
            system = VansSystem(cfg)
            now = 0
            # write bursts landing on distinct 4KB chunks
            for i in range(48):
                accept = system.write(i * 4 * KIB, now)
                now = accept + 5 * NS
            return system.fence(now)

        assert burst_time(6) < burst_time(1)
