"""Litmus generator, oracle, corpus, campaign, and stream-op plumbing."""

import json

import pytest

from repro.common.errors import FaultPlanError
from repro.experiments import exec as exec_core
from repro.faults import power_cut_plan
from repro.litmus import (
    CONTRACTS,
    LITMUS_SCHEMA,
    REQUEST_OPS,
    LitmusCase,
    campaign_exit_code,
    check,
    contract_for,
    load_corpus,
    outcome_of,
    random_case,
    replay_corpus,
    run_campaign,
    run_case,
    save_corpus,
    shrink_case,
    validate_case,
    validate_corpus,
)
from repro.litmus.corpus import case_entry
from repro.tools import litmus_cli


# -- generator --------------------------------------------------------------

class TestGenerator:
    def test_same_seed_same_case(self):
        assert random_case(7).to_dict() == random_case(7).to_dict()

    def test_different_seeds_differ(self):
        assert random_case(1).ops != random_case(2).ops

    def test_target_changes_stream(self):
        # the rng purpose string includes the target, so the same seed
        # fuzzes each target differently
        assert random_case(3, target="vans").ops != \
               random_case(3, target="vans-lazy").ops

    def test_generated_cases_are_valid(self):
        for seed in range(20):
            doc = random_case(seed, target="vans-lazy").to_dict()
            assert validate_case(doc) == []

    def test_cut_ordinal_within_request_count(self):
        for seed in range(20):
            case = random_case(seed)
            nreq = case.request_ops
            assert nreq >= 1
            assert 1 <= case.cut_at_request <= nreq

    def test_vans_family_gets_migrate_threshold(self):
        case = random_case(4, target="vans-lazy")
        assert case.overrides["migrate_threshold"] in (4, 8, 16)
        assert "migrate_threshold" not in \
               random_case(4, target="memory-mode").overrides

    def test_round_trip(self):
        case = random_case(11, target="vans")
        assert LitmusCase.from_dict(case.to_dict()) == case

    def test_validate_rejects_garbage(self):
        assert validate_case({"schema": "nope"})
        doc = random_case(0).to_dict()
        doc["ops"] = [{"op": "explode", "addr": 0}]
        assert any("explode" in p for p in validate_case(doc))
        doc = random_case(0).to_dict()
        doc["cut_at_request"] = 0
        assert validate_case(doc)

    def test_from_dict_rejects_invalid(self):
        with pytest.raises(FaultPlanError):
            LitmusCase.from_dict({"schema": LITMUS_SCHEMA, "ops": []})


# -- oracle golden cases ----------------------------------------------------

def _case(name, target, ops, cut, **overrides):
    return LitmusCase(name=name, target=target, ops=tuple(ops),
                      cut_at_request=cut, seed=0,
                      overrides=dict(overrides))


class TestOracle:
    def test_contract_map(self):
        assert CONTRACTS["vans"] == "adr"
        assert contract_for("vans-lazy", {}) == "adr-lazy"
        assert contract_for("memory-mode", {}) == "none"
        # the lazy_cache override flips the vans contracts
        assert contract_for("vans", {"lazy_cache": True}) == "adr-lazy"
        assert contract_for("vans-lazy", {"lazy_cache": False}) == "adr"

    def test_fenced_nt_stores_all_durable(self):
        case = _case("fenced", "vans", [
            {"op": "write", "addr": 0x0},
            {"op": "write", "addr": 0x40},
            {"op": "fence"},
            {"op": "write", "addr": 0x80},
        ], cut=3)
        result = run_case(case)
        verdict = check(case, result)
        assert verdict.ok, verdict.violations
        outcome = outcome_of(result)
        assert outcome["cut"] is True
        assert outcome["lost"] == []

    def test_unflushed_store_lost_is_not_a_violation(self):
        # a plain store with no flush is *allowed* to be lost under ADR
        case = _case("unflushed", "vans", [
            {"op": "store", "addr": 0x0},
            {"op": "write", "addr": 0x100},
        ], cut=1)
        result = run_case(case)
        verdict = check(case, result)
        assert verdict.ok, verdict.violations
        assert [(e[1], e[2]) for e in verdict.losses] == \
               [("cache", "unflushed")]

    def test_store_flush_fence_before_cut_must_survive(self):
        case = _case("sff", "vans", [
            {"op": "store", "addr": 0x0},
            {"op": "flush", "addr": 0x0},
            {"op": "fence"},
            {"op": "write", "addr": 0x100},
        ], cut=2)
        result = run_case(case)
        verdict = check(case, result)
        assert verdict.ok, verdict.violations
        assert verdict.losses == []

    def test_memory_mode_contract_skips_cut_mapping(self):
        case = random_case(5, target="memory-mode")
        verdict = check(case, run_case(case))
        assert verdict.contract == "none"
        assert verdict.ok, verdict.violations

    def test_oracle_flags_forged_wpq_loss_on_vans(self):
        # tamper with a clean result: claim an acknowledged nt-store was
        # lost — under the strict ADR contract that is a violation
        case = _case("forged", "vans", [
            {"op": "write", "addr": 0x0},
            {"op": "write", "addr": 0x100},
        ], cut=2)
        result = run_case(case)
        result["faults"]["persistence"]["lost"] = [
            {"addr": 0, "ack_ps": 1, "domain": "wpq",
             "reason": "lazy_dirty"}]
        result["faults"]["persistence"]["durable_lines"] -= 1
        result["faults"]["persistence"]["lost_count"] = 1
        verdict = check(case, result)
        assert not verdict.ok
        assert any(v["kind"] == "wpq_loss" for v in verdict.violations)

    def test_missing_cut_is_a_violation(self):
        case = _case("nocut", "vans", [
            {"op": "write", "addr": 0x0},
            {"op": "write", "addr": 0x40},
        ], cut=2)
        result = run_case(case)
        result["faults"]["persistence"] = None
        verdict = check(case, result)
        assert any(v["kind"] == "missing_cut" for v in verdict.violations)

    def test_sweep_has_no_violations(self):
        for target in ("vans", "vans-lazy", "memory-mode"):
            for seed in range(8):
                case = random_case(seed, target=target)
                verdict = check(case, run_case(case))
                assert verdict.ok, (target, seed, verdict.violations)


# -- stream ops: flush / store / write_nt plumbing --------------------------

class TestStreamOps:
    def test_unknown_op_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'flush'"):
            exec_core.run_stream("vans", [{"op": "flsh", "addr": 0}])

    def test_flush_without_faults_still_runs(self):
        result = exec_core.run_stream("vans", [
            {"op": "store", "addr": 0},
            {"op": "flush", "addr": 0},
            {"op": "fence"},
        ])
        assert result["counts"] == {"read": 0, "write": 0, "write_nt": 0,
                                    "store": 1, "flush": 1, "fence": 1}
        assert result["faults"] == {}

    def test_flush_does_not_forge_wpq_ack(self):
        # a flush rides the write datapath for timing but must land in
        # the checker as a flush, never as a WPQ acknowledgement
        plan = power_cut_plan(at_request=3, seed=0)
        result = exec_core.run_stream("vans", [
            {"op": "flush", "addr": 0x0},
            {"op": "write", "addr": 0x100},
            {"op": "read", "addr": 0x200},
        ], faults=plan)
        persistence = result["faults"]["persistence"]
        # only the nt-store acked; the bare flush acked nothing
        assert persistence["acked_lines"] == 1

    def test_store_flush_fence_acks_cache_domain(self):
        plan = power_cut_plan(at_request=3, seed=0)
        result = exec_core.run_stream("vans", [
            {"op": "store", "addr": 0x0},
            {"op": "flush", "addr": 0x0},
            {"op": "fence"},
            {"op": "write", "addr": 0x100},
            {"op": "read", "addr": 0x200},
        ], faults=plan)
        persistence = result["faults"]["persistence"]
        assert persistence["acked_lines"] == 2
        assert persistence["lost_count"] == 0

    def test_write_nt_falls_back_to_write(self):
        result = exec_core.run_stream("vans", [
            {"op": "write_nt", "addr": 0, "count": 4}])
        assert result["counts"]["write_nt"] == 4

    def test_faults_doc_accepted_as_mapping(self):
        plan = power_cut_plan(at_request=1, seed=3)
        by_plan = exec_core.run_stream(
            "vans", [{"op": "write", "addr": 0}], faults=plan)
        by_doc = exec_core.run_stream(
            "vans", [{"op": "write", "addr": 0}], faults=plan.to_dict())
        assert by_plan["faults"] == by_doc["faults"]


# -- corpus -----------------------------------------------------------------

class TestCorpus:
    def test_committed_corpus_validates_and_replays_clean(self):
        doc = load_corpus("corpus/litmus.json")
        assert any(entry["target"] == "vans-lazy"
                   and any(item[1] == "wpq"
                           for item in entry["expected"]["lost"])
                   for entry in doc["cases"]), \
            "corpus must pin the vans-lazy acknowledged-loss family"
        report = replay_corpus(doc)
        assert report["checked"] == len(doc["cases"])
        assert report["drift"] == []
        assert report["violations"] == []

    def test_round_trip(self, tmp_path):
        entries = [case_entry(random_case(seed, target="vans"))
                   for seed in range(3)]
        path = tmp_path / "corpus.json"
        save_corpus(path, entries)
        doc = load_corpus(path)
        assert [c["name"] for c in doc["cases"]] == \
               [e["name"] for e in entries]
        report = replay_corpus(doc)
        assert report["drift"] == [] and report["violations"] == []

    def test_replay_detects_drift(self, tmp_path):
        entry = case_entry(random_case(0, target="vans"))
        entry["expected"]["durable_lines"] += 1
        entry["expected"]["acked_lines"] += 1
        doc = {"schema": LITMUS_SCHEMA, "cases": [entry]}
        report = replay_corpus(doc)
        assert len(report["drift"]) == 1
        assert report["drift"][0]["name"] == entry["name"]

    def test_validate_rejects_duplicates_and_missing_expected(self):
        entry = case_entry(random_case(0))
        doc = {"schema": LITMUS_SCHEMA, "cases": [entry, dict(entry)]}
        assert any("duplicate" in p for p in validate_corpus(doc))
        bare = random_case(1).to_dict()
        doc = {"schema": LITMUS_SCHEMA, "cases": [bare]}
        assert any("expected" in p for p in validate_corpus(doc))

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "wrong", "cases": []}))
        with pytest.raises(FaultPlanError):
            load_corpus(path)


# -- campaign ---------------------------------------------------------------

class TestCampaign:
    def test_serial_campaign_deterministic(self):
        a = run_campaign(9, 12)
        b = run_campaign(9, 12)
        assert a["loss_families"] == b["loss_families"]
        assert a["completed"] == b["completed"] == 12
        assert a["violation_count"] == 0
        assert a["exit_code"] == 0

    def test_parallel_matches_serial(self):
        serial = run_campaign(9, 30)
        parallel = run_campaign(9, 30, workers=2)
        assert parallel["completed"] == 30
        assert parallel["loss_families"] == serial["loss_families"]
        assert parallel["violation_count"] == 0

    def test_counters_ride_the_bus(self):
        report = run_campaign(2, 6)
        counters = report["counters"]
        assert counters["litmus.cases"] == 6
        assert counters["litmus.ok"] == 6
        assert counters["litmus.violations"] == 0

    def test_targets_round_robin(self):
        report = run_campaign(1, 6, targets=("vans", "vans-lazy"))
        names = [v["case"]["name"] for v in report.get("violations", [])]
        assert names == []  # no violations expected
        assert report["targets"] == ["vans", "vans-lazy"]

    def test_exit_codes(self):
        assert campaign_exit_code({"violation_count": 1}) == 3
        assert campaign_exit_code(
            {"violation_count": 0, "cases": 4, "completed": 0}) == 1
        assert campaign_exit_code(
            {"violation_count": 0, "cases": 4, "completed": 3,
             "failed": 1}) == 4
        assert campaign_exit_code(
            {"violation_count": 0, "cases": 4, "completed": 4,
             "failed": 0}) == 0


# -- serve thin-client path -------------------------------------------------

class TestServePath:
    def test_stream_faults_round_trip_through_daemon(self):
        from repro.serve.client import ServeClient
        from repro.serve.server import running_daemon

        case = random_case(28, target="vans-lazy")
        local = run_case(case)
        with running_daemon(workers=1) as daemon:
            with ServeClient("127.0.0.1", daemon.port,
                             tenant="litmus") as client:
                served = run_case(case, client=client)
                report = run_campaign(5, 6, client=client)
        strip = lambda d: {k: v for k, v in d.items() if k != "session"}
        assert strip(served) == strip(local)
        assert outcome_of(served) == outcome_of(local)
        assert report["completed"] == 6
        assert report["violation_count"] == 0


# -- CLI --------------------------------------------------------------------

class TestCli:
    def test_gen_writes_valid_case(self, tmp_path, capsys):
        out = tmp_path / "case.json"
        assert litmus_cli.main(["gen", "--seed", "28", "--target",
                                "vans-lazy", "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_case(doc) == []
        assert doc == random_case(28, target="vans-lazy").to_dict()

    def test_run_clean_case_exits_zero(self, tmp_path, capsys):
        assert litmus_cli.main(["run", "--seed", "3",
                                "--target", "vans"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_run_violating_result_exits_three(self, tmp_path, capsys):
        # memory-mode with lazy_cache forced on would be a structural
        # violation; simpler: corpus drift is covered elsewhere, so
        # exercise the exit path through a forged corpus instead
        entry = case_entry(random_case(0, target="vans"))
        entry["expected"]["durable_lines"] += 1
        entry["expected"]["acked_lines"] += 1
        path = tmp_path / "corpus.json"
        path.write_text(json.dumps(
            {"schema": LITMUS_SCHEMA, "cases": [entry]}))
        assert litmus_cli.main(["corpus", str(path), "--replay"]) == 3

    def test_corpus_validate_and_replay_committed(self, capsys):
        assert litmus_cli.main(["corpus", "corpus/litmus.json"]) == 0
        assert litmus_cli.main(["corpus", "corpus/litmus.json",
                                "--replay"]) == 0

    def test_campaign_smoke(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = litmus_cli.main([
            "campaign", "--seed", "11", "--cases", "40",
            "--require-loss-on", "vans-lazy", "--json", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["completed"] == 40
        assert any(family.startswith("vans-lazy/")
                   for family in report["loss_families"])

    def test_campaign_require_loss_unmet_exits_one(self, tmp_path,
                                                   capsys):
        rc = litmus_cli.main([
            "campaign", "--seed", "1", "--cases", "2",
            "--targets", "vans", "--require-loss-on", "vans-lazy"])
        assert rc == 1

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "nope.json"
        assert litmus_cli.main(["run", str(bad)]) == 2
        bad.write_text("{\"schema\": \"wrong\"}")
        assert litmus_cli.main(["corpus", str(bad)]) == 2
