"""Power-failure persistence checker: ADR-domain golden cases."""

from repro import registry
from repro.faults import (
    FaultInjector,
    PersistenceChecker,
    power_cut_plan,
    session,
    validate_persistence,
)
from repro.tools.faults_cli import _drive

CUT = 10_000


class TestWpqDomain:
    def test_wpq_ack_is_durable_at_acknowledgement(self):
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "wpq")
        report = checker.report(CUT)
        assert report.acked_lines == 1
        assert report.durable_lines == 1
        assert report.lost == []

    def test_ack_after_cut_not_counted(self):
        checker = PersistenceChecker()
        checker.ack(0x100, CUT + 1, "wpq")
        report = checker.report(CUT)
        assert report.acked_lines == 0

    def test_acked_then_lost_to_lazy_dirty_block(self):
        # the adversarial Section V-C scenario: the WPQ accepted the
        # write (program told it's durable) but the Lazy cache holds the
        # block's newest data at the cut
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "wpq")
        checker.lazy_absorb(0x100, 2_000)
        report = checker.report(CUT)
        assert report.durable_lines == 0
        assert report.lost == [{"addr": 0x100, "ack_ps": 1_000,
                                "domain": "wpq", "reason": "lazy_dirty"}]

    def test_written_back_block_survives(self):
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "wpq")
        checker.lazy_absorb(0x100, 2_000)
        checker.lazy_writeback(0x100, 3_000)
        assert checker.report(CUT).lost == []

    def test_writeback_after_cut_is_too_late(self):
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "wpq")
        checker.lazy_absorb(0x100, 2_000)
        checker.lazy_writeback(0x100, CUT + 1)
        assert [e["reason"] for e in checker.report(CUT).lost] == \
               ["lazy_dirty"]


class TestCacheDomain:
    def test_unflushed_store_is_lost(self):
        checker = PersistenceChecker()
        checker.ack(0x40, 1_000, "cache")
        assert [e["reason"] for e in checker.report(CUT).lost] == \
               ["unflushed"]

    def test_flush_without_fence_is_lost(self):
        checker = PersistenceChecker()
        checker.ack(0x40, 1_000, "cache")
        checker.flush(0x40, 2_000)
        assert [e["reason"] for e in checker.report(CUT).lost] == \
               ["unfenced"]

    def test_fenced_nt_store_pattern_survives(self):
        # store -> clwb -> sfence, all before the cut: durable
        checker = PersistenceChecker()
        checker.ack(0x40, 1_000, "cache")
        checker.flush(0x40, 2_000)
        checker.fence(3_000)
        report = checker.report(CUT)
        assert report.durable_lines == 1
        assert report.lost == []

    def test_fence_before_flush_does_not_count(self):
        checker = PersistenceChecker()
        checker.fence(500)
        checker.ack(0x40, 1_000, "cache")
        checker.flush(0x40, 2_000)
        assert [e["reason"] for e in checker.report(CUT).lost] == \
               ["unfenced"]

    def test_flush_before_ack_does_not_count(self):
        checker = PersistenceChecker()
        checker.flush(0x40, 500)
        checker.ack(0x40, 1_000, "cache")
        checker.fence(2_000)
        assert [e["reason"] for e in checker.report(CUT).lost] == \
               ["unflushed"]


class TestLazyDomain:
    def test_absorbed_write_needs_writeback(self):
        checker = PersistenceChecker()
        checker.ack(0x200, 1_000, "lazy")
        checker.lazy_absorb(0x200, 1_000)
        assert [e["reason"] for e in checker.report(CUT).lost] == \
               ["not_written_back"]

    def test_writeback_makes_it_durable(self):
        checker = PersistenceChecker()
        checker.ack(0x200, 1_000, "lazy")
        checker.lazy_absorb(0x200, 1_000)
        checker.lazy_writeback(0x200, 2_000)
        assert checker.report(CUT).lost == []


class TestReplaySemantics:
    def test_only_newest_ack_per_line_is_judged(self):
        # early durable version superseded by a later lost one
        checker = PersistenceChecker()
        checker.ack(0x80, 1_000, "wpq")
        checker.ack(0x80, 2_000, "cache")   # newest; never flushed
        report = checker.report(CUT)
        assert report.acked_lines == 1
        assert [e["reason"] for e in report.lost] == ["unflushed"]

    def test_sub_line_addresses_coalesce(self):
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "wpq")
        checker.ack(0x13f, 2_000, "wpq")    # same 64B line
        assert checker.report(CUT).acked_lines == 1

    def test_event_cap_sets_saturated(self):
        checker = PersistenceChecker(max_events=2)
        checker.ack(0x0, 1, "wpq")
        checker.ack(0x40, 2, "wpq")
        checker.ack(0x80, 3, "wpq")         # dropped
        report = checker.report(CUT)
        assert report.saturated is True
        assert report.acked_lines == 2

    def test_report_document_validates_and_renders(self):
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "wpq")
        checker.lazy_absorb(0x100, 2_000)
        report = checker.report(CUT)
        assert validate_persistence(report.as_dict()) == []
        text = report.render()
        assert "LOST acknowledged:  1" in text
        assert "lazy_dirty" in text


def _audit(target: str) -> "PersistenceReport":
    """Drive a registry target under a mid-run power cut and audit it."""
    injector = FaultInjector(power_cut_plan(at_request=300),
                             checker=PersistenceChecker())
    with session(injector):
        system = registry.build(target, migrate_threshold=50)
        _drive(system, writes=600, hot_lines=8, stride=64,
               fence_every=64, read_every=16)
    assert injector.cut_ps is not None
    return injector.checker.report(injector.cut_ps)


class TestEndToEnd:
    def test_fenced_vans_loses_nothing(self):
        report = _audit("vans")
        assert report.acked_lines > 0
        assert report.lost == []

    def test_vans_lazy_loses_acknowledged_writes(self):
        # the headline result: the Lazy cache trades tail latency for a
        # hole in the ADR persistence guarantee — acknowledged writes
        # sitting dirty in on-DIMM SRAM do not survive the cut
        report = _audit("vans-lazy")
        assert report.lost_count >= 1
        assert all(e["reason"] == "lazy_dirty" for e in report.lost)
        assert report.durable_lines < report.acked_lines
