"""Power-failure persistence checker: ADR-domain golden cases."""

from repro import registry
from repro.faults import (
    FaultInjector,
    PersistenceChecker,
    power_cut_plan,
    session,
    validate_persistence,
)
from repro.tools.faults_cli import _drive

CUT = 10_000


class TestWpqDomain:
    def test_wpq_ack_is_durable_at_acknowledgement(self):
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "wpq")
        report = checker.report(CUT)
        assert report.acked_lines == 1
        assert report.durable_lines == 1
        assert report.lost == []

    def test_ack_after_cut_not_counted(self):
        checker = PersistenceChecker()
        checker.ack(0x100, CUT + 1, "wpq")
        report = checker.report(CUT)
        assert report.acked_lines == 0

    def test_acked_then_lost_to_lazy_dirty_block(self):
        # the adversarial Section V-C scenario: the WPQ accepted the
        # write (program told it's durable) but the Lazy cache holds the
        # block's newest data at the cut
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "wpq")
        checker.lazy_absorb(0x100, 2_000)
        report = checker.report(CUT)
        assert report.durable_lines == 0
        assert report.lost == [{"addr": 0x100, "ack_ps": 1_000,
                                "domain": "wpq", "reason": "lazy_dirty"}]

    def test_written_back_block_survives(self):
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "wpq")
        checker.lazy_absorb(0x100, 2_000)
        checker.lazy_writeback(0x100, 3_000)
        assert checker.report(CUT).lost == []

    def test_writeback_after_cut_is_too_late(self):
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "wpq")
        checker.lazy_absorb(0x100, 2_000)
        checker.lazy_writeback(0x100, CUT + 1)
        assert [e["reason"] for e in checker.report(CUT).lost] == \
               ["lazy_dirty"]


class TestCacheDomain:
    def test_unflushed_store_is_lost(self):
        checker = PersistenceChecker()
        checker.ack(0x40, 1_000, "cache")
        assert [e["reason"] for e in checker.report(CUT).lost] == \
               ["unflushed"]

    def test_flush_without_fence_is_lost(self):
        checker = PersistenceChecker()
        checker.ack(0x40, 1_000, "cache")
        checker.flush(0x40, 2_000)
        assert [e["reason"] for e in checker.report(CUT).lost] == \
               ["unfenced"]

    def test_fenced_nt_store_pattern_survives(self):
        # store -> clwb -> sfence, all before the cut: durable
        checker = PersistenceChecker()
        checker.ack(0x40, 1_000, "cache")
        checker.flush(0x40, 2_000)
        checker.fence(3_000)
        report = checker.report(CUT)
        assert report.durable_lines == 1
        assert report.lost == []

    def test_fence_before_flush_does_not_count(self):
        checker = PersistenceChecker()
        checker.fence(500)
        checker.ack(0x40, 1_000, "cache")
        checker.flush(0x40, 2_000)
        assert [e["reason"] for e in checker.report(CUT).lost] == \
               ["unfenced"]

    def test_flush_before_ack_does_not_count(self):
        checker = PersistenceChecker()
        checker.flush(0x40, 500)
        checker.ack(0x40, 1_000, "cache")
        checker.fence(2_000)
        assert [e["reason"] for e in checker.report(CUT).lost] == \
               ["unflushed"]


class TestLazyDomain:
    def test_absorbed_write_needs_writeback(self):
        checker = PersistenceChecker()
        checker.ack(0x200, 1_000, "lazy")
        checker.lazy_absorb(0x200, 1_000)
        assert [e["reason"] for e in checker.report(CUT).lost] == \
               ["not_written_back"]

    def test_writeback_makes_it_durable(self):
        checker = PersistenceChecker()
        checker.ack(0x200, 1_000, "lazy")
        checker.lazy_absorb(0x200, 1_000)
        checker.lazy_writeback(0x200, 2_000)
        assert checker.report(CUT).lost == []


class TestReplaySemantics:
    def test_only_newest_ack_per_line_is_judged(self):
        # early durable version superseded by a later lost one
        checker = PersistenceChecker()
        checker.ack(0x80, 1_000, "wpq")
        checker.ack(0x80, 2_000, "cache")   # newest; never flushed
        report = checker.report(CUT)
        assert report.acked_lines == 1
        assert [e["reason"] for e in report.lost] == ["unflushed"]

    def test_sub_line_addresses_coalesce(self):
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "wpq")
        checker.ack(0x13f, 2_000, "wpq")    # same 64B line
        assert checker.report(CUT).acked_lines == 1

    def test_event_cap_sets_saturated(self):
        checker = PersistenceChecker(max_events=2)
        checker.ack(0x0, 1, "wpq")
        checker.ack(0x40, 2, "wpq")
        checker.ack(0x80, 3, "wpq")         # dropped
        report = checker.report(CUT)
        assert report.saturated is True
        assert report.acked_lines == 2

    def test_report_document_validates_and_renders(self):
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "wpq")
        checker.lazy_absorb(0x100, 2_000)
        report = checker.report(CUT)
        assert validate_persistence(report.as_dict()) == []
        text = report.render()
        assert "LOST acknowledged:  1" in text
        assert "lazy_dirty" in text


def _audit(target: str) -> "PersistenceReport":
    """Drive a registry target under a mid-run power cut and audit it."""
    injector = FaultInjector(power_cut_plan(at_request=300),
                             checker=PersistenceChecker())
    with session(injector):
        system = registry.build(target, migrate_threshold=50)
        _drive(system, writes=600, hot_lines=8, stride=64,
               fence_every=64, read_every=16)
    assert injector.cut_ps is not None
    return injector.checker.report(injector.cut_ps)


class TestEndToEnd:
    def test_fenced_vans_loses_nothing(self):
        report = _audit("vans")
        assert report.acked_lines > 0
        assert report.lost == []

    def test_vans_lazy_loses_acknowledged_writes(self):
        # the headline result: the Lazy cache trades tail latency for a
        # hole in the ADR persistence guarantee — acknowledged writes
        # sitting dirty in on-DIMM SRAM do not survive the cut
        report = _audit("vans-lazy")
        assert report.lost_count >= 1
        assert all(e["reason"] == "lazy_dirty" for e in report.lost)
        assert report.durable_lines < report.acked_lines


# -- report document round-trip (property-based) ----------------------------

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import FaultPlanError
from repro.faults import LOSS_REASONS, PersistenceReport, validate_report

_lines = st.integers(0, 2**40 // 64).map(lambda n: n * 64)
_times = st.integers(0, 10**12)


@st.composite
def _reports(draw):
    """Reports built to satisfy the counting invariants by construction."""
    lost = draw(st.lists(st.builds(
        lambda addr, t, domain_reason: {
            "addr": addr, "ack_ps": t,
            "domain": domain_reason[0], "reason": domain_reason[1]},
        _lines, _times,
        st.sampled_from([(d, r) for d, rs in LOSS_REASONS.items()
                         for r in rs])), max_size=8))
    durable_by_domain = {
        domain: draw(st.integers(0, 5)) for domain in LOSS_REASONS}
    by_domain = dict(durable_by_domain)
    for entry in lost:
        by_domain[entry["domain"]] += 1
    return PersistenceReport(
        cut_ps=draw(_times),
        acked_lines=sum(by_domain.values()),
        durable_lines=sum(durable_by_domain.values()),
        lost=lost,
        by_domain=by_domain,
        saturated=draw(st.booleans()),
    )


class TestReportRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(_reports())
    def test_to_dict_from_dict_round_trips(self, report):
        doc = report.to_dict()
        assert validate_report(doc) == []
        rebuilt = PersistenceReport.from_dict(doc)
        assert rebuilt == report
        assert rebuilt.to_dict() == doc

    @settings(max_examples=60, deadline=None)
    @given(_reports())
    def test_json_round_trip_is_stable(self, report):
        import json
        wire = json.dumps(report.to_dict(), sort_keys=True)
        rebuilt = PersistenceReport.from_dict(json.loads(wire))
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == wire

    def test_from_dict_rejects_broken_invariant(self):
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "wpq")
        doc = checker.report(CUT).to_dict()
        doc["durable_lines"] += 1
        with pytest.raises(FaultPlanError, match="acked_lines"):
            PersistenceReport.from_dict(doc)

    def test_from_dict_rejects_bad_reason_pairing(self):
        checker = PersistenceChecker()
        checker.ack(0x100, 1_000, "cache")
        report = checker.report(CUT)
        doc = report.to_dict()
        assert doc["lost"][0]["reason"] == "unflushed"
        doc["lost"][0]["reason"] = "lazy_dirty"   # wpq-only reason
        with pytest.raises(FaultPlanError, match="reason"):
            PersistenceReport.from_dict(doc)

    def test_validate_report_rejects_bool_counters(self):
        checker = PersistenceChecker()
        doc = checker.report(CUT).to_dict()
        doc["acked_lines"] = True
        assert any("expected an int" in p for p in validate_report(doc))
