"""Parallel experiment runner: fan-out must be bit-identical to serial."""

import pytest

from repro.common.errors import ReproError, UnknownExperimentError
from repro.experiments.common import Scale
from repro.experiments.export import result_to_dict
from repro.experiments.runner import (
    REGISTRY,
    filter_ids,
    run_all,
    run_experiment,
    validate_ids,
)

FAST_IDS = ["fig1", "tables"]


class TestValidation:
    def test_validate_ids_accepts_known(self):
        assert validate_ids(FAST_IDS) == FAST_IDS

    def test_validate_ids_rejects_unknown(self):
        with pytest.raises(UnknownExperimentError) as exc_info:
            validate_ids(["fig1", "fig99"])
        assert isinstance(exc_info.value, ReproError)
        assert "fig99" in str(exc_info.value)
        assert "tables" in str(exc_info.value)

    def test_run_experiment_rejects_unknown(self):
        with pytest.raises(UnknownExperimentError):
            run_experiment("fig99", Scale.SMOKE)

    def test_filter_matches_metadata(self):
        assert "fig13" in filter_ids("lazy")
        assert filter_ids("zzz-no-match") == []


class TestMetadata:
    def test_every_spec_names_registry_targets(self):
        from repro import registry
        for spec in REGISTRY.values():
            assert spec.targets, spec.id
            for target in spec.targets:
                registry.spec(target)  # raises if unknown

    def test_costs_and_sections_present(self):
        for spec in REGISTRY.values():
            assert spec.est_cost > 0
            assert spec.section


def _deterministic_dict(result):
    """result_to_dict minus wall-clock fields (excluded by definition)."""
    doc = result_to_dict(result)
    doc.pop("wall_s")
    return doc


class TestParallelDeterminism:
    def test_workers_match_serial_bit_for_bit(self):
        serial = run_all(Scale.SMOKE, ids=FAST_IDS)
        parallel = run_all(Scale.SMOKE, ids=FAST_IDS, workers=4)
        assert [r.experiment for r in serial] == \
               [r.experiment for r in parallel]
        for a, b in zip(serial, parallel):
            assert _deterministic_dict(a) == _deterministic_dict(b)

    def test_wall_seconds_attached_to_every_result(self):
        for result in run_all(Scale.SMOKE, ids=["fig1"]):
            assert result.wall_s > 0
            assert result_to_dict(result)["wall_s"] == result.wall_s

    def test_instrumentation_attached_to_every_result(self):
        for result in run_all(Scale.SMOKE, ids=["fig1"]):
            instr = result.instrumentation
            assert instr["systems"] >= 1
            assert "dimm.rmw_misses" in instr
            assert any(k.endswith("media_port.busy_ps") for k in instr)
