"""Baseline emulators/simulators: they must behave like the paper says
they do — i.e. like slower DRAM, *without* Optane's buffer structure."""

import pytest

from repro.baselines import (
    PMEPModel,
    QuartzModel,
    SlowDramSystem,
    dramsim2_ddr3,
    ramulator_ddr4,
    ramulator_pcm,
)
from repro.common.units import KIB, MIB, NS
from repro.lens.microbench.pointer_chasing import PointerChasing


class TestPmep:
    def test_read_includes_injected_delay(self):
        pmep = PMEPModel()
        done = pmep.read(0, 0)
        assert done >= pmep.read_delay_ps

    def test_latency_flat_across_regions(self):
        """The Figure 1b PMEP signature: no buffer tiers."""
        pc = PointerChasing(seed=1)
        small = pc.read_latency_ns(PMEPModel(), 4 * KIB)
        large = pc.read_latency_ns(PMEPModel(), 64 * MIB)
        assert large / small < 1.3

    def test_nt_store_slower_than_cached(self):
        """The Figure 1a inversion on PMEP."""
        pmep = PMEPModel()
        cached = pmep.write(0, 0)
        pmep2 = PMEPModel()
        nt = pmep2.write_nt(0, 0)
        assert nt > cached

    def test_throttle_serializes_writes(self):
        pmep = PMEPModel()
        a = pmep.write(0, 0)
        b = pmep.write(64, 0)
        assert b > a


class TestQuartz:
    def test_delay_injected_at_epoch_boundaries(self):
        quartz = QuartzModel(epoch_accesses=4, extra_read_ps=100 * NS)
        latencies = []
        now = 0
        for i in range(8):
            done = quartz.read(i * 64, now)
            latencies.append(done - now)
            now = done
        # epochs end at accesses 4 and 8: those two reads absorb the
        # banked delay of their whole epoch
        assert latencies[3] > latencies[0]
        assert latencies[7] > latencies[4]
        assert quartz.injected_stall_ps == 8 * 100 * NS

    def test_average_reflects_target_latency(self):
        quartz = QuartzModel(epoch_accesses=16, extra_read_ps=200 * NS)
        now = 0
        n = 64
        for i in range(n):
            now = quartz.read(i * 64, now)
        assert now / n >= 200 * NS


class TestSlowDram:
    @pytest.mark.parametrize("factory", [dramsim2_ddr3, ramulator_ddr4,
                                         ramulator_pcm])
    def test_construct_and_access(self, factory):
        system = factory()
        assert isinstance(system, SlowDramSystem)
        done = system.read(0, 0)
        assert done > 0
        assert system.write(64, done) > done

    def test_pcm_slower_than_ddr4(self):
        pcm_done = ramulator_pcm().read(0, 0)
        ddr_done = ramulator_ddr4().read(0, 0)
        assert pcm_done > ddr_done

    def test_no_buffer_tiers(self):
        """The Figure 3b signature: PCM-on-DDR has no 16KB inflection."""
        pc = PointerChasing(seed=2)
        at_8k = pc.read_latency_ns(ramulator_pcm(), 8 * KIB)
        at_64k = pc.read_latency_ns(ramulator_pcm(), 64 * KIB)
        assert abs(at_64k - at_8k) / at_8k < 0.25

    def test_fence_free(self):
        assert ramulator_ddr4().fence(42) == 42
