"""Crash-consistency of the persistent log, under exhaustive crash
injection at every protocol step and both pending-line outcomes."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.pmlib import PersistentLog, UnorderedLog
from repro.vans.functional import FunctionalMemory


def run_with_crash(log_cls, appends, crash_append, crash_step, policy):
    """Append values, crashing inside append #crash_append after
    protocol step #crash_step; returns the recovery."""
    memory = FunctionalMemory()
    log = log_cls(memory)
    for i, value in enumerate(appends):
        steps = log.append_steps(value)
        if i == crash_append:
            for _ in range(crash_step + 1):
                next(steps, None)
            memory.crash(pending_policy=policy)
            return PersistentLog.recover(memory)
        for _ in steps:
            pass
    memory.crash(pending_policy=policy)
    return PersistentLog.recover(memory)


class TestPersistentLogBasics:
    def test_append_and_recover(self):
        memory = FunctionalMemory()
        log = PersistentLog(memory)
        for v in ("a", "b", "c"):
            log.append(v)
        rec = PersistentLog.recover(memory)
        assert rec.count == 3
        assert rec.entries == ["a", "b", "c"]
        assert not rec.torn

    def test_empty_log_recovers_empty(self):
        memory = FunctionalMemory()
        PersistentLog(memory)
        rec = PersistentLog.recover(memory)
        assert rec.count == 0
        assert rec.entries == []


class TestCrashInjection:
    STEPS_ORDERED = 4   # entry-stored, entry-fenced, count-stored, committed
    POLICIES = ("drop", "keep")

    @pytest.mark.parametrize("crash_step,policy", list(
        itertools.product(range(STEPS_ORDERED), POLICIES)))
    def test_ordered_log_never_tears(self, crash_step, policy):
        """The correct protocol: any crash point, any pending outcome —
        recovery sees an intact prefix."""
        appends = ["v0", "v1", "v2"]
        rec = run_with_crash(PersistentLog, appends, crash_append=1,
                             crash_step=crash_step, policy=policy)
        assert rec.count <= 2
        assert not rec.torn
        assert rec.entries == [f"v{i}" for i in range(rec.count)]

    def test_unordered_log_tears(self):
        """The buggy protocol: crash after the count store with the
        entry still pending and only the count line persisting — the
        exact interleaving the missing fence allows."""
        memory = FunctionalMemory()
        log = UnorderedLog(memory)
        log.append("v0")
        steps = log.append_steps("v1")
        next(steps)          # entry-stored (pending, no fence!)
        next(steps)          # count-stored (pending)
        # adversarial partial persistence: count line lands, entry lost
        header = log._header_addr()
        memory._persistent[header] = memory._pending.pop(header)
        memory.crash(pending_policy="drop")
        rec = PersistentLog.recover(memory)
        assert rec.count == 2
        assert rec.torn          # committed entry is garbage

    def test_ordered_log_immune_to_same_adversary(self):
        memory = FunctionalMemory()
        log = PersistentLog(memory)
        log.append("v0")
        steps = log.append_steps("v1")
        next(steps)          # entry-stored
        next(steps)          # entry-fenced -> entry durable
        next(steps)          # count-stored (pending)
        header = log._header_addr()
        memory._persistent[header] = memory._pending.pop(header)
        memory.crash(pending_policy="drop")
        rec = PersistentLog.recover(memory)
        assert rec.count == 2
        assert not rec.torn  # the fence made the entry durable first


@settings(max_examples=40, deadline=None)
@given(n_appends=st.integers(1, 6),
       crash_append=st.integers(0, 5),
       crash_step=st.integers(0, 3),
       seed=st.integers(0, 100))
def test_ordered_log_prefix_property(n_appends, crash_append, crash_step,
                                     seed):
    """Property: under random partial persistence at any crash point,
    the ordered log always recovers an intact prefix."""
    memory = FunctionalMemory()
    log = PersistentLog(memory)
    values = [f"v{i}" for i in range(n_appends)]
    crashed = False
    for i, value in enumerate(values):
        steps = log.append_steps(value)
        if i == crash_append:
            for _ in range(crash_step + 1):
                next(steps, None)
            memory.crash(pending_policy="random", seed=seed)
            crashed = True
            break
        for _ in steps:
            pass
    if not crashed:
        memory.crash(pending_policy="random", seed=seed)
    rec = PersistentLog.recover(memory)
    assert rec.count <= n_appends
    assert not rec.torn
    assert rec.entries == values[:rec.count]
