"""Deterministic RNG streams."""

from repro.common.rng import make_rng


def test_same_seed_same_stream():
    a = make_rng(42, "x")
    b = make_rng(42, "x")
    assert [a.random() for _ in range(8)] == [b.random() for _ in range(8)]


def test_different_stream_decorrelates():
    a = make_rng(42, "x")
    b = make_rng(42, "y")
    assert [a.random() for _ in range(8)] != [b.random() for _ in range(8)]


def test_different_seed_decorrelates():
    a = make_rng(1, "x")
    b = make_rng(2, "x")
    assert [a.random() for _ in range(8)] != [b.random() for _ in range(8)]
