"""The per-request flight recorder: lifecycle, sampling, attribution,
breakdown reporting, Chrome export, and end-to-end wiring."""

import json

import pytest
from hypothesis import given, strategies as st

from repro import registry
from repro.common.errors import ConfigError
from repro.engine.request import Op, Request
from repro.flight import (
    MODES,
    NULL_FLIGHT,
    OTHER,
    FlightRecord,
    FlightRecorder,
    LatencyBreakdown,
    SpanEvent,
    attribute,
    breakdown_by_size,
    breakdowns,
    current,
    save_chrome_trace,
    session,
    to_chrome_trace,
)
from repro.vans import VansSystem


def make_record(spans, issue=0, complete=100, op="read"):
    record = FlightRecord(op=op, addr=0, size=64, issue_ps=issue,
                          complete_ps=complete)
    for station, start, end in spans:
        record.spans.append(SpanEvent(station, "service", start, end, None))
    return record


class TestNullFlight:
    def test_everything_is_a_noop(self):
        NULL_FLIGHT.begin("read", 0)
        NULL_FLIGHT.span("x", 0, 10)
        NULL_FLIGHT.instant("x", "mark", 5)
        NULL_FLIGHT.end(10)
        assert NULL_FLIGHT.last is None

    def test_guard_attributes_are_false(self):
        assert NULL_FLIGHT.enabled is False
        assert NULL_FLIGHT.active is False


class TestRecorderLifecycle:
    def test_begin_span_end(self):
        fl = FlightRecorder()
        fl.begin("read", 0x40, issue_ps=100, req_id=7)
        assert fl.active
        fl.span("imc.rpq", 100, 150, phase="wait")
        fl.instant("dimm.lsq", "combine", 120, block="0x0")
        fl.end(900)
        assert not fl.active
        record = fl.last
        assert record.op == "read"
        assert record.req_id == 7
        assert record.latency_ps == 800
        assert [s.station for s in record.spans] == ["imc.rpq"]
        assert record.spans[0].duration_ps == 50
        assert record.instants[0].detail == {"block": "0x0"}

    def test_nested_begins_fold_into_outermost(self):
        fl = FlightRecorder()
        fl.begin("read", 0, issue_ps=0)
        fl.begin("read", 0, issue_ps=10)  # inner system forwards
        fl.span("inner", 10, 20)
        fl.end(20)
        assert fl.active  # outer request still open
        fl.end(30)
        assert fl.seen == 1
        assert len(fl.records) == 1
        assert fl.records[0].complete_ps == 30
        assert [s.station for s in fl.records[0].spans] == ["inner"]

    def test_spans_outside_request_are_dropped(self):
        fl = FlightRecorder()
        fl.span("imc.rpq", 0, 10)
        assert fl.records == []

    def test_zero_length_spans_are_dropped(self):
        fl = FlightRecorder()
        fl.begin("read", 0)
        fl.span("imc.rpq", 50, 50)
        fl.span("imc.rpq", 60, 40)
        fl.end(100)
        assert fl.last.spans == []

    def test_end_without_begin_is_harmless(self):
        fl = FlightRecorder()
        fl.end(10)
        assert fl.records == []

    def test_invalid_configs_raise(self):
        with pytest.raises(ConfigError):
            FlightRecorder(mode="sometimes")
        with pytest.raises(ConfigError):
            FlightRecorder(mode="every", every=0)
        with pytest.raises(ConfigError):
            FlightRecorder(mode="reservoir", capacity=0)
        assert set(MODES) == {"all", "every", "reservoir"}


class TestSampling:
    def run_requests(self, fl, n):
        for i in range(n):
            fl.begin("read", i * 64, issue_ps=i * 100)
            fl.span("media", i * 100, i * 100 + 50)
            fl.end(i * 100 + 90)

    def test_every_keeps_one_in_n(self):
        fl = FlightRecorder(mode="every", every=4)
        self.run_requests(fl, 10)
        assert fl.seen == 10
        assert len(fl.records) == 3  # requests 0, 4, 8
        assert [r.addr for r in fl.records] == [0, 4 * 64, 8 * 64]
        assert fl.dropped == 7

    def test_unsampled_requests_record_no_spans(self):
        fl = FlightRecorder(mode="every", every=2)
        fl.begin("read", 0)       # kept
        assert fl.active
        fl.end(10)
        fl.begin("read", 64)      # skipped
        assert not fl.active
        fl.span("media", 0, 50)   # must be dropped silently
        fl.end(20)
        assert len(fl.records) == 1

    def test_reservoir_bounds_and_determinism(self):
        a = FlightRecorder(mode="reservoir", capacity=8, seed=3)
        b = FlightRecorder(mode="reservoir", capacity=8, seed=3)
        self.run_requests(a, 100)
        self.run_requests(b, 100)
        assert len(a.records) == 8
        assert a.seen == 100
        assert [r.addr for r in a.records] == [r.addr for r in b.records]

    def test_reservoir_different_seed_differs(self):
        a = FlightRecorder(mode="reservoir", capacity=8, seed=0)
        b = FlightRecorder(mode="reservoir", capacity=8, seed=99)
        self.run_requests(a, 200)
        self.run_requests(b, 200)
        assert [r.addr for r in a.records] != [r.addr for r in b.records]

    def test_sampling_summary(self):
        fl = FlightRecorder(mode="every", every=2)
        self.run_requests(fl, 5)
        summary = fl.sampling_summary()
        assert summary["mode"] == "every"
        assert summary["seen"] == 5
        assert summary["kept"] == 3
        assert summary["dropped"] == 2


class TestAttribution:
    def test_single_full_cover(self):
        record = make_record([("media", 0, 100)])
        assert attribute(record) == {"media": 100}

    def test_uncovered_time_goes_to_other(self):
        record = make_record([("media", 20, 60)])
        assert attribute(record) == {"media": 40, OTHER: 60}

    def test_innermost_span_wins(self):
        record = make_record([("dimm.engine", 0, 100),
                              ("dimm.ait", 30, 50)])
        assert attribute(record) == {"dimm.engine": 80, "dimm.ait": 20}

    def test_three_level_nesting(self):
        record = make_record([("cpu", 0, 100),
                              ("dimm", 10, 90),
                              ("media", 40, 60)])
        assert attribute(record) == {"cpu": 20, "dimm": 60, "media": 20}

    def test_spans_clipped_to_request_window(self):
        record = make_record([("media", -50, 30), ("drain", 80, 500)],
                             issue=0, complete=100)
        assert attribute(record) == {"media": 30, OTHER: 50, "drain": 20}

    def test_empty_window_returns_nothing(self):
        record = make_record([("media", 0, 10)], issue=100, complete=100)
        assert attribute(record) == {}

    def test_no_spans_is_all_other(self):
        record = make_record([])
        assert attribute(record) == {OTHER: 100}

    @given(st.lists(
        st.tuples(st.sampled_from(["a", "b", "c", "d"]),
                  st.integers(-50, 250), st.integers(-50, 250)),
        max_size=12),
        st.integers(1, 200))
    def test_shares_always_sum_to_latency(self, raw_spans, latency):
        """The invariant: attribution is an exact partition of the
        request window, whatever the span soup looks like."""
        record = make_record([(s, min(a, b), max(a, b))
                              for s, a, b in raw_spans],
                             issue=0, complete=latency)
        shares = attribute(record)
        assert sum(shares.values()) == latency
        assert all(v > 0 for v in shares.values())


class TestLatencyBreakdown:
    def records(self):
        return [make_record([("media", 0, 60), ("imc.rpq", 60, 80)],
                            complete=100),
                make_record([("media", 100, 180)], issue=100, complete=200)]

    def test_stage_means_sum_to_total_mean(self):
        breakdown = LatencyBreakdown.from_records(self.records())
        assert breakdown.count == 2
        assert breakdown.mean_ps == 100.0
        assert sum(s.mean_ps for s in breakdown.stages) == \
            pytest.approx(breakdown.mean_ps)
        assert sum(s.share for s in breakdown.stages) == pytest.approx(1.0)

    def test_bottleneck_prefers_named_stage(self):
        breakdown = LatencyBreakdown.from_records(self.records())
        assert breakdown.bottleneck == "media"

    def test_other_can_be_bottleneck_only_when_alone(self):
        breakdown = LatencyBreakdown.from_records([make_record([])])
        assert breakdown.bottleneck == OTHER

    def test_render_marks_bottleneck(self):
        text = LatencyBreakdown.from_records(self.records()).render()
        assert "media" in text and "<- bottleneck" in text
        assert "p99" in text

    def test_as_dict_is_json_safe(self):
        payload = LatencyBreakdown.from_records(self.records()).as_dict()
        json.dumps(payload)
        assert payload["bottleneck"] == "media"
        assert "media" in payload["stages"]

    def test_empty_records(self):
        breakdown = LatencyBreakdown.from_records([])
        assert breakdown.count == 0
        assert "(no records)" in breakdown.render()

    def test_breakdowns_split_by_op(self):
        records = self.records() + [make_record([("imc.wpq", 0, 50)],
                                                complete=50, op="write_nt")]
        by_op = breakdowns(records)
        assert set(by_op) == {"read", "write_nt"}
        assert by_op["write_nt"].bottleneck == "imc.wpq"

    def test_breakdown_by_size_keys(self):
        records = self.records()
        records[0].size = 256
        by_size = breakdown_by_size(records)
        assert set(by_size) == {("read", 64), ("read", 256)}


class TestSession:
    def test_current_defaults_to_null(self):
        assert current() is NULL_FLIGHT

    def test_session_installs_and_restores(self):
        fl = FlightRecorder()
        with session(fl) as active:
            assert active is fl
            assert current() is fl
        assert current() is NULL_FLIGHT

    def test_registry_attaches_session_recorder(self):
        fl = FlightRecorder()
        with session(fl):
            system = registry.build("vans")
        assert system.flight is fl

    def test_plain_construction_stays_null(self):
        system = VansSystem()
        assert system.flight is NULL_FLIGHT


class TestVansWiring:
    def drive(self, mode="all", reads=64, writes=32, **kwargs):
        fl = FlightRecorder(mode=mode, **kwargs)
        with session(fl):
            system = registry.build("vans")
            now = 0
            for i in range(reads):
                now = system.read((i * 4096) % (1 << 22), now)
            for i in range(writes):
                now = system.write((i * 64) % 4096, now)
            system.fence(now)
        return fl

    def test_read_breakdown_sums_to_end_to_end(self):
        """Acceptance criterion: per-stage means sum (within float
        rounding) to the end-to-end mean for vans 64B reads — and
        per-record shares sum *exactly*."""
        fl = self.drive()
        reads = [r for r in fl.records if r.op == "read"]
        assert len(reads) == 64
        for record in reads:
            assert sum(attribute(record).values()) == record.latency_ps
        breakdown = breakdowns(fl.records)["read"]
        assert sum(s.mean_ps for s in breakdown.stages) == \
            pytest.approx(breakdown.mean_ps, rel=1e-12)

    def test_read_path_stations_present(self):
        fl = self.drive()
        stations = {s.station for r in fl.records if r.op == "read"
                    for s in r.spans}
        for expected in ("cpu.frontend", "ddrt.link", "dimm.lsq",
                         "dimm.ait", "media"):
            assert expected in stations, stations

    def test_uninstrumented_time_is_negligible(self):
        """Full station coverage: 'other' must be a rounding sliver, not
        a stage."""
        breakdown = breakdowns(self.drive().records)["read"]
        other = next((s for s in breakdown.stages if s.station == OTHER),
                     None)
        assert other is None or other.share < 0.01

    def test_write_records_end_at_accept(self):
        fl = self.drive()
        writes = [r for r in fl.records if r.op == "write"]
        assert writes
        for record in writes:
            assert record.complete_ps >= record.issue_ps

    def test_fence_records_cover_drain(self):
        fl = self.drive()
        fences = [r for r in fl.records if r.op == "fence"]
        assert len(fences) == 1
        stations = {s.station for s in fences[0].spans}
        assert "imc.wpq" in stations or "dimm.lsq" in stations

    def test_sampled_run_is_bit_identical_to_unsampled(self):
        """Recording must never perturb simulated time."""
        from contextlib import nullcontext

        def end_time(fl):
            with session(fl) if fl is not None else nullcontext():
                system = registry.build("vans")
                now = 0
                for i in range(100):
                    now = system.read((i * 4096) % (1 << 20), now)
            return now

        bare = end_time(None)
        assert end_time(FlightRecorder()) == bare
        assert end_time(FlightRecorder(mode="every", every=8)) == bare
        assert end_time(FlightRecorder(mode="reservoir", capacity=4)) == bare


class TestSubmitAttachment:
    def test_submit_hangs_record_on_request(self):
        fl = FlightRecorder()
        with session(fl):
            system = registry.build("vans")
        request = system.submit(Request(addr=0x1000, op=Op.READ))
        assert request.flight is not None
        assert request.flight.req_id == request.req_id
        assert request.flight.complete_ps == request.complete_ps

    def test_submit_without_recorder_leaves_none(self):
        request = VansSystem().submit(Request(addr=0x1000, op=Op.READ))
        assert request.flight is None

    def test_submit_unsampled_request_leaves_none(self):
        fl = FlightRecorder(mode="every", every=2)
        with session(fl):
            system = registry.build("vans")
        first = system.submit(Request(addr=0, op=Op.READ))
        second = system.submit(Request(addr=64, op=Op.READ))
        assert first.flight is not None
        assert second.flight is None


class TestChromeExport:
    def trace(self):
        fl = FlightRecorder()
        with session(fl):
            system = registry.build("vans")
            now = 0
            for i in range(8):
                now = system.read(i * 4096, now)
        return to_chrome_trace(fl.records, extra_metadata={"target": "vans"})

    def test_schema(self):
        trace = self.trace()
        assert trace["displayTimeUnit"] == "ns"
        assert trace["otherData"]["records"] == 8
        assert trace["otherData"]["target"] == "vans"
        events = trace["traceEvents"]
        assert events, "no events exported"
        for event in events:
            assert event["ph"] in ("M", "X", "i")
            assert event["pid"] == 0
            if event["ph"] == "X":
                assert isinstance(event["ts"], (int, float))
                assert isinstance(event["dur"], (int, float))
                assert event["dur"] >= 0
                assert isinstance(event["tid"], int)
                assert ":" in event["name"]
                assert event["args"]["end_ps"] >= event["args"]["start_ps"]
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_station_lanes_are_named_and_sorted(self):
        trace = self.trace()
        names = {e["args"]["name"]: e["tid"]
                 for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "media" in names
        ordered = sorted(names, key=lambda n: names[n])
        assert ordered == sorted(names)

    def test_timestamps_are_microseconds(self):
        trace = self.trace()
        span = next(e for e in trace["traceEvents"] if e["ph"] == "X")
        assert span["ts"] == span["args"]["start_ps"] / 1e6

    def test_save_to_path_and_file(self, tmp_path):
        fl = FlightRecorder()
        fl.begin("read", 0)
        fl.span("media", 0, 50)
        fl.end(100)
        path = tmp_path / "trace.json"
        count = save_chrome_trace(fl.records, path)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count
        import io
        buffer = io.StringIO()
        assert save_chrome_trace(fl.records, buffer) == count

    def test_empty_records_still_valid(self):
        trace = to_chrome_trace([])
        json.dumps(trace)
        assert trace["otherData"]["records"] == 0


class TestRunnerIntegration:
    def test_run_experiment_attaches_flight(self):
        from repro.experiments.runner import make_flight_recorder, run_experiment

        recorder = make_flight_recorder({"mode": "every", "every": 16})
        results = run_experiment("fig1", flight=recorder)
        assert results
        for result in results:
            assert result.flight["sampling"]["mode"] == "every"
            assert result.flight["sampling"]["kept"] > 0
            assert "read" in result.flight["breakdowns"]
        assert recorder.records

    def test_flight_survives_json_export(self):
        from repro.experiments.export import result_to_dict
        from repro.experiments.runner import make_flight_recorder, run_experiment

        recorder = make_flight_recorder({"mode": "every", "every": 16})
        result = run_experiment("fig1", flight=recorder)[0]
        payload = result_to_dict(result)
        json.dumps(payload)
        assert payload["flight"]["breakdowns"]["read"]["count"] > 0

    def test_no_flight_by_default(self):
        from repro.experiments.runner import make_flight_recorder, run_experiment

        assert make_flight_recorder(None) is None
        result = run_experiment("fig1")[0]
        assert result.flight == {}


class TestFlightCli:
    def test_pattern_run_with_export(self, tmp_path, capsys):
        from repro.tools.flight_cli import main

        out = str(tmp_path / "trace.json")
        assert main(["vans", "--pattern", "chase", "--ops", "100",
                     "--region", "65536", "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "latency breakdown [read]" in stdout
        assert "bottleneck" in stdout
        trace = json.loads(open(out).read())
        assert trace["otherData"]["target"].startswith("vans")
        assert trace["traceEvents"]

    def test_sample_and_reservoir_conflict(self, capsys):
        from repro.tools.flight_cli import main

        assert main(["vans", "--sample", "4", "--reservoir", "10"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_unknown_target_exits_2(self, capsys):
        from repro.tools.flight_cli import main

        assert main(["nope"]) == 2

    def test_reservoir_run(self, capsys):
        from repro.tools.flight_cli import main

        assert main(["vans", "--ops", "200", "--reservoir", "16"]) == 0
        out = capsys.readouterr().out
        assert "16/200 requests recorded" in out

    def test_trace_replay_with_flight(self, tmp_path, capsys):
        from repro.tools.trace_cli import main as trace_main

        path = str(tmp_path / "x.trace")
        assert trace_main(["capture", path, "--pattern", "seq-write",
                           "--ops", "64"]) == 0
        assert trace_main(["replay", path, "--target", "vans",
                           "--flight"]) == 0
        out = capsys.readouterr().out
        assert "latency breakdown [write]" in out
