"""TLB hierarchy and page-table walker."""

import pytest

from repro.cpu.tlb import (
    PAGE_SIZE,
    STLB_CONFIG,
    Tlb,
    TlbConfig,
    TlbHierarchy,
    WALK_LEVELS,
)
from repro.common.errors import ConfigError


def test_config_geometry():
    assert STLB_CONFIG.entries == 1536
    assert STLB_CONFIG.nsets == 128


def test_invalid_geometry():
    with pytest.raises(ConfigError):
        TlbConfig("bad", 63, 4)


def test_miss_install_hit():
    tlb = Tlb(TlbConfig("t", 16, 4))
    assert not tlb.lookup(0)
    tlb.install(0)
    assert tlb.lookup(0)
    assert tlb.lookup(4095)          # same page
    assert not tlb.lookup(PAGE_SIZE)  # next page


def test_lru_within_set():
    tlb = Tlb(TlbConfig("t", 16, 4))  # 4 sets
    set_stride = 4 * PAGE_SIZE
    for i in range(4):
        tlb.install(i * set_stride)
    tlb.lookup(0)
    tlb.install(4 * set_stride)  # evicts LRU (page 1*stride)
    assert tlb.lookup(0)
    assert not tlb.lookup(set_stride)


class TestHierarchy:
    def test_walk_only_on_stlb_miss(self):
        tlbs = TlbHierarchy()
        needs_walk, _, addrs = tlbs.translate(0)
        assert needs_walk
        assert len(addrs) == WALK_LEVELS
        tlbs.install(0)
        needs_walk, _, _ = tlbs.translate(0)
        assert not needs_walk

    def test_dtlb_miss_stlb_hit_refills_dtlb(self):
        tlbs = TlbHierarchy()
        tlbs.install(0)
        # flush the small DTLB by installing many pages in its set
        set_stride = tlbs.dtlb.config.nsets * PAGE_SIZE
        for i in range(1, 6):
            tlbs.dtlb.install(i * set_stride)
        before = tlbs.stlb.hits
        needs_walk, _, _ = tlbs.translate(0)
        assert not needs_walk
        assert tlbs.stlb.hits == before + 1

    def test_walk_addresses_share_upper_levels(self):
        tlbs = TlbHierarchy()
        a = tlbs.walk_addresses(0)
        b = tlbs.walk_addresses(PAGE_SIZE)  # adjacent page
        assert a[:3] == b[:3]      # upper levels identical
        assert a[3] != b[3]        # leaf PTEs differ
        # adjacent leaf PTEs share a cache line (8B entries)
        assert a[3] // 64 == b[3] // 64

    def test_walk_addresses_distinct_levels(self):
        addrs = TlbHierarchy().walk_addresses(123 * PAGE_SIZE)
        assert len(set(addrs)) == WALK_LEVELS

    def test_stlb_miss_counter(self):
        tlbs = TlbHierarchy()
        tlbs.translate(0)
        assert tlbs.stlb_misses == 1
        tlbs.reset_stats()
        assert tlbs.stlb_misses == 0

    def test_capacity_reach(self):
        """Regions within the STLB reach never miss twice."""
        tlbs = TlbHierarchy()
        npages = 1024  # < 1536 entries, distinct sets balanced
        for i in range(npages):
            tlbs.install(i * PAGE_SIZE)
        misses_before = tlbs.stlb.misses
        for i in range(npages):
            tlbs.translate(i * PAGE_SIZE)
        assert tlbs.stlb.misses == misses_before
