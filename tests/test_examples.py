"""The shipped examples must keep running.

Fast examples run end-to-end (scaled down where they expose knobs);
slow ones are at least imported and their pieces exercised.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES.glob("*.py")}
    assert {"quickstart", "characterize_nvram", "design_space",
            "cloud_optimization", "persistent_log",
            "serve_client"} <= names


def test_persistent_log_example(capsys):
    module = load_example("persistent_log")
    module.main()
    out = capsys.readouterr().out
    assert "torn=True" in out       # the buggy variant tears
    assert "0/12" in out            # the ordered one never does


def test_quickstart_example(capsys):
    module = load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "16K" in out
    assert "latency" in out


def test_design_space_example(capsys):
    module = load_example("design_space")
    module.main()
    out = capsys.readouterr().out
    assert "RMW buffer size sweep" in out
    assert "DIMM population sweep" in out


def test_cloud_optimization_example_scaled(capsys):
    module = load_example("cloud_optimization")
    module.NOPS = 3000
    module.WARMUP = 1500
    module.main()
    out = capsys.readouterr().out
    assert "linkedlist" in out


def test_characterize_example_pieces(capsys):
    """Full LENS on the mystery DIMM is minutes; exercise its pieces."""
    module = load_example("characterize_nvram")
    config = module.mystery_config()
    assert config.dimm.rmw.capacity_bytes == 32 * 1024
    assert config.dimm.ait.capacity_bytes == 8 * 1024 * 1024


def test_serve_client_example(capsys):
    module = load_example("serve_client")
    module.main()
    out = capsys.readouterr().out
    assert "bit-identical" not in out      # the assert inside held
    assert "warm cache after rerun" in out
    assert "rejected (code 429)" in out
    assert "shut down cleanly" in out
