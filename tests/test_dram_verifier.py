"""DDR4 protocol checker: legal traces pass, violations are caught.

This is the reproduction of the paper's Section IV-B verification: the
controller's command stream is replayed through an independent
implementation of the JEDEC rules.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ProtocolError
from repro.dram.command import Command, CmdType
from repro.dram.controller import DramController
from repro.dram.timing import DDR4_2666, DDR3_1600, PCM_TIMING
from repro.dram.verifier import DDR4ProtocolChecker

T = DDR4_2666


def checked(commands):
    return DDR4ProtocolChecker(T, nbanks=16).check(commands)


class TestLegalTraces:
    def test_minimal_read(self):
        cmds = [
            Command(0, CmdType.ACT, 0, row=1),
            Command(T.ps(T.trcd), CmdType.RD, 0, col=0),
        ]
        assert checked(cmds) == 2

    def test_act_rd_pre_act_cycle(self):
        t1 = T.ps(T.trcd)
        pre = max(T.ps(T.tras), t1 + T.ps(T.trtp))
        cmds = [
            Command(0, CmdType.ACT, 0, row=1),
            Command(t1, CmdType.RD, 0, col=0),
            Command(pre, CmdType.PRE, 0),
            Command(pre + T.ps(T.trp), CmdType.ACT, 0, row=2),
        ]
        assert checked(cmds) == 4

    def test_controller_sequential_trace_is_legal(self):
        ctrl = DramController(T, record_commands=True)
        now = 0
        for i in range(256):
            now = ctrl.access(i * 64, i % 3 == 0, now)
        assert checked(ctrl.commands) == len(ctrl.commands)

    def test_controller_random_trace_is_legal(self):
        from repro.common.rng import make_rng
        rng = make_rng(11, "dram-verify")
        ctrl = DramController(T, record_commands=True)
        now = 0
        for _ in range(512):
            addr = rng.randrange(1 << 24) // 64 * 64
            now = ctrl.access(addr, rng.random() < 0.4, now)
        assert checked(ctrl.commands) == len(ctrl.commands)

    def test_controller_trace_with_refresh_is_legal(self):
        ctrl = DramController(T, record_commands=True)
        now = 0
        # span several tREFI windows
        for i in range(64):
            now = ctrl.access(i * 64, False, now + T.ps(T.trefi) // 4)
        assert CmdType.REF in [c.kind for c in ctrl.commands]
        assert checked(ctrl.commands) == len(ctrl.commands)

    def test_closed_page_trace_is_legal(self):
        ctrl = DramController(T, record_commands=True, row_policy="closed")
        now = 0
        for i in range(128):
            now = ctrl.access(i * 4096, i % 2 == 0, now)
        assert checked(ctrl.commands) == len(ctrl.commands)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, (1 << 22) - 1),
                              st.booleans(),
                              st.integers(0, 2000)),
                    min_size=1, max_size=120),
           st.sampled_from([DDR4_2666, DDR3_1600, PCM_TIMING]))
    def test_any_access_pattern_yields_legal_commands(self, ops, timing):
        """Property: the controller never emits an illegal command
        stream, whatever the access pattern or timing grade."""
        ctrl = DramController(timing, record_commands=True)
        now = 0
        for addr, is_write, gap in ops:
            now = ctrl.access(addr // 64 * 64, is_write, now + gap * 1000)
        DDR4ProtocolChecker(timing, nbanks=16).check(ctrl.commands)


class TestViolationsCaught:
    def test_rd_without_act(self):
        with pytest.raises(ProtocolError, match="precharged"):
            checked([Command(0, CmdType.RD, 0, col=0)])

    def test_rd_before_trcd(self):
        with pytest.raises(ProtocolError, match="tRCD"):
            checked([
                Command(0, CmdType.ACT, 0, row=1),
                Command(T.ps(T.trcd) - 1, CmdType.RD, 0, col=0),
            ])

    def test_pre_before_tras(self):
        with pytest.raises(ProtocolError, match="tRAS"):
            checked([
                Command(0, CmdType.ACT, 0, row=1),
                Command(T.ps(T.tras) - 1, CmdType.PRE, 0),
            ])

    def test_act_to_open_bank(self):
        with pytest.raises(ProtocolError, match="open row"):
            checked([
                Command(0, CmdType.ACT, 0, row=1),
                Command(T.ps(T.trc), CmdType.ACT, 0, row=2),
            ])

    def test_act_act_trrd(self):
        with pytest.raises(ProtocolError, match="tRRD"):
            checked([
                Command(0, CmdType.ACT, 0, row=1),
                Command(T.ps(T.trrd) - 1, CmdType.ACT, 1, row=1),
            ])

    def test_five_acts_in_tfaw(self):
        spacing = T.ps(T.trrd)
        cmds = [Command(i * spacing, CmdType.ACT, i, row=0) for i in range(5)]
        with pytest.raises(ProtocolError, match="tFAW"):
            checked(cmds)

    def test_wrong_row_column_access(self):
        with pytest.raises(ProtocolError, match="row"):
            checked([
                Command(0, CmdType.ACT, 0, row=1),
                Command(T.ps(T.trcd), CmdType.RD, 0, row=2, col=0),
            ])

    def test_read_too_soon_after_write(self):
        t_wr = T.ps(T.trcd)
        data_end = t_wr + T.ps(T.cwl) + T.ps(T.burst_cycles)
        cmds = [
            Command(0, CmdType.ACT, 0, row=1),
            Command(t_wr, CmdType.WR, 0, col=0),
            Command(data_end + T.ps(T.twtr) - 1, CmdType.RD, 0, col=1),
        ]
        with pytest.raises(ProtocolError, match="tWTR"):
            checked(cmds)

    def test_tccd_burst_spacing(self):
        t_rd = T.ps(T.trcd)
        cmds = [
            Command(0, CmdType.ACT, 0, row=1),
            Command(t_rd, CmdType.RD, 0, col=0),
            Command(t_rd + T.ps(T.tccd) - 1, CmdType.RD, 0, col=1),
        ]
        with pytest.raises(ProtocolError, match="tCCD"):
            checked(cmds)

    def test_refresh_with_open_bank(self):
        with pytest.raises(ProtocolError, match="open"):
            checked([
                Command(0, CmdType.ACT, 0, row=1),
                Command(T.ps(T.tras), CmdType.REF, -1),
            ])

    def test_command_during_refresh(self):
        with pytest.raises(ProtocolError, match="tRFC"):
            checked([
                Command(0, CmdType.REF, -1),
                Command(T.ps(T.trfc) - 1, CmdType.ACT, 0, row=1),
            ])

    def test_pre_before_write_recovery(self):
        t_wr = T.ps(T.trcd)
        data_end = t_wr + T.ps(T.cwl) + T.ps(T.burst_cycles)
        cmds = [
            Command(0, CmdType.ACT, 0, row=1),
            Command(t_wr, CmdType.WR, 0, col=0),
            Command(data_end + T.ps(T.twr) - 1, CmdType.PRE, 0),
        ]
        with pytest.raises(ProtocolError, match="tWR"):
            checked(cmds)

    def test_redundant_pre_is_flagged_not_fatal(self):
        checker = DDR4ProtocolChecker(T)
        checker.check([Command(0, CmdType.PRE, 0)])
        assert checker.violations
