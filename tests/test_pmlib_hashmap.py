"""Undo-log hash map: crash atomicity of in-place updates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pmlib import PersistentHashMap
from repro.vans.functional import FunctionalMemory


def crash_during_put(key, old_value, new_value, crash_step, policy):
    """Install old_value durably, crash inside put(new_value) after
    protocol step #crash_step, recover; returns the recovered value."""
    memory = FunctionalMemory()
    hmap = PersistentHashMap(memory)
    if old_value is not None:
        hmap.put(key, old_value)
    steps = hmap.put_steps(key, new_value)
    for _ in range(crash_step + 1):
        next(steps, None)
    memory.crash(pending_policy=policy)
    recovered = PersistentHashMap.recover(memory)
    return recovered.persisted_get(key)


class TestBasics:
    def test_put_get(self):
        hmap = PersistentHashMap(FunctionalMemory())
        hmap.put(5, "five")
        assert hmap.get(5) == "five"
        assert hmap.get(6) is None

    def test_overwrite(self):
        hmap = PersistentHashMap(FunctionalMemory())
        hmap.put(5, "a")
        hmap.put(5, "b")
        assert hmap.get(5) == "b"

    def test_bucket_collision_semantics(self):
        hmap = PersistentHashMap(FunctionalMemory(), nbuckets=4)
        hmap.put(1, "one")
        hmap.put(5, "five")  # same bucket: last writer wins
        assert hmap.get(5) == "five"
        assert hmap.get(1) is None

    def test_clean_recovery_keeps_data(self):
        memory = FunctionalMemory()
        hmap = PersistentHashMap(memory)
        hmap.put(9, "nine")
        memory.crash(pending_policy="drop")
        recovered = PersistentHashMap.recover(memory)
        assert recovered.persisted_get(9) == "nine"


class TestCrashAtomicity:
    @pytest.mark.parametrize("crash_step", [0, 1, 2])
    @pytest.mark.parametrize("policy", ["drop", "keep"])
    def test_update_is_all_or_nothing(self, crash_step, policy):
        value = crash_during_put(7, "old", "new", crash_step, policy)
        assert value in ("old", "new")  # never garbage, never half

    def test_crash_before_data_rolls_back(self):
        assert crash_during_put(7, "old", "new", 0, "drop") == "old"

    def test_crash_after_commit_keeps_new(self):
        assert crash_during_put(7, "old", "new", 2, "drop") == "new"

    def test_crash_mid_update_rolls_back_via_undo(self):
        """Data persisted but undo still valid: recovery must undo."""
        assert crash_during_put(7, "old", "new", 1, "keep") == "old"

    def test_insert_rollback_to_empty(self):
        value = crash_during_put(3, None, "first", 1, "keep")
        assert value is None  # rolled back to never-inserted


@settings(max_examples=40, deadline=None)
@given(key=st.integers(0, 63),
       crash_step=st.integers(0, 2),
       seed=st.integers(0, 50),
       n_updates=st.integers(1, 4))
def test_atomicity_property(key, crash_step, seed, n_updates):
    """Property: whatever the crash point and partial-persistence
    outcome, recovery sees one of the committed values."""
    memory = FunctionalMemory()
    hmap = PersistentHashMap(memory)
    committed = []
    for i in range(n_updates - 1):
        hmap.put(key, f"v{i}")
        committed.append(f"v{i}")
    steps = hmap.put_steps(key, f"v{n_updates - 1}")
    for _ in range(crash_step + 1):
        next(steps, None)
    memory.crash(pending_policy="random", seed=seed)
    recovered = PersistentHashMap.recover(memory)
    value = recovered.persisted_get(key)
    legal = {None} if not committed else {committed[-1]}
    legal.add(f"v{n_updates - 1}")  # the in-flight value, if committed
    if committed:
        legal.discard(None)
    assert value in legal
