"""Command-line tools."""

import pytest

from repro.common.errors import ReproError, UnknownTargetError
from repro.tools.lens_cli import main as lens_main
from repro.tools.targets import TARGETS, make_target
from repro.tools.trace_cli import main as trace_main


class TestTargets:
    def test_all_targets_construct(self):
        for name in TARGETS:
            system = make_target(name)()
            assert system.read(0, 0) > 0

    def test_unknown_target(self):
        with pytest.raises(UnknownTargetError) as exc_info:
            make_target("nope")
        assert isinstance(exc_info.value, ReproError)
        assert "vans" in str(exc_info.value)

    def test_unknown_target_exit_code(self, capsys):
        assert lens_main(["nope", "--buffers"]) == 2
        assert "unknown target" in capsys.readouterr().err


class TestLensCli:
    def test_buffer_probe_on_vans(self, capsys):
        assert lens_main(["vans", "--buffers"]) == 0
        out = capsys.readouterr().out
        assert "16K" in out and "16M" in out
        assert "inclusive" in out

    def test_buffer_probe_on_pmep(self, capsys):
        assert lens_main(["pmep", "--buffers"]) == 0
        out = capsys.readouterr().out
        assert "none detected" in out


class TestTraceCli:
    def test_capture_then_replay(self, tmp_path, capsys):
        path = str(tmp_path / "x.trace")
        assert trace_main(["capture", path, "--pattern", "chase",
                           "--ops", "200"]) == 0
        assert trace_main(["replay", path, "--target", "vans"]) == 0
        out = capsys.readouterr().out
        assert "reads:" in out
        assert "200" in out

    def test_capture_overwrite_pattern(self, tmp_path, capsys):
        path = str(tmp_path / "ow.trace")
        assert trace_main(["capture", path, "--pattern", "overwrite",
                           "--ops", "10"]) == 0
        assert trace_main(["replay", path]) == 0
        out = capsys.readouterr().out
        assert "fences: 10" in out

    def test_seq_write_pattern(self, tmp_path, capsys):
        path = str(tmp_path / "w.trace")
        trace_main(["capture", path, "--pattern", "seq-write",
                    "--ops", "64"])
        trace_main(["replay", path, "--target", "ramulator-ddr4"])
        out = capsys.readouterr().out
        assert "writes:" in out
