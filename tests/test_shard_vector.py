"""Numpy batch kernels vs their authoritative scalar loops.

The vectorized FCFS prefix scan and the batched media path must be
*invisible*: identical completion times, identical server/counter
state, identical checksums — on arbitrary arrival/service patterns,
hypothesis-style.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.common.errors import ConfigError
from repro.engine.queueing import BankedServer, Server
from repro.media.xpoint import XPointConfig, XPointMedia
from repro.shard import vector
from repro.shard.merge import completion_checksum
from repro.shard.vector import (
    banked_serve_batch,
    batch_checksum,
    batch_timeline,
    fcfs_completions,
    media_access_batch,
    media_access_batch_scalar,
    serve_batch,
)

pytestmark = pytest.mark.skipif(not vector.HAVE_NUMPY,
                                reason="numpy unavailable")

jobs = st.lists(st.tuples(st.integers(min_value=0, max_value=10_000),
                          st.integers(min_value=0, max_value=500)),
                max_size=60)


def _sorted_arrivals(pairs):
    """FCFS servers assume non-decreasing arrivals within a stream."""
    arrivals = sorted(a for a, _ in pairs)
    services = [s for _, s in pairs]
    return arrivals, services


@settings(max_examples=200, deadline=None)
@given(jobs, st.integers(min_value=0, max_value=5_000))
def test_fcfs_scan_matches_scalar_server(pairs, busy0):
    arrivals, services = _sorted_arrivals(pairs)
    scalar = Server()
    scalar.busy_until = busy0
    expected = scalar.serve_batch(arrivals, services)

    vec = Server()
    vec.busy_until = busy0
    got = serve_batch(vec, arrivals, services)
    assert list(got) == expected
    assert (vec.busy_until, vec.total_busy, vec.served) \
        == (scalar.busy_until, scalar.total_busy, scalar.served)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=7),
                          st.integers(min_value=0, max_value=10_000),
                          st.integers(min_value=1, max_value=500)),
                max_size=60))
def test_banked_scan_matches_scalar(rows):
    rows.sort(key=lambda row: row[1])  # stream order = arrival order
    banks = [b for b, _, _ in rows]
    arrivals = [a for _, a, _ in rows]
    services = [s for _, _, s in rows]

    scalar = BankedServer(4)
    expected = scalar.serve_batch(banks, arrivals, services)

    vec = BankedServer(4)
    got = banked_serve_batch(vec, banks, arrivals, services)
    assert list(got) == expected
    for sb, vb in zip(scalar.banks, vec.banks):
        assert (sb.busy_until, sb.total_busy, sb.served) \
            == (vb.busy_until, vb.total_busy, vb.served)


def _media():
    return XPointMedia(XPointConfig(capacity_bytes=1 << 20))


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=(1 << 21)),
                          st.booleans()),
                max_size=50),
       st.integers(min_value=0, max_value=1_000_000))
def test_media_batch_matches_scalar(accesses, start):
    addrs = [a for a, _ in accesses]
    writes = [w for _, w in accesses]
    issues = [start + 100 * i for i in range(len(accesses))]

    ref = _media()
    expected = media_access_batch_scalar(ref, addrs, writes, issues)

    med = _media()
    got = media_access_batch(med, addrs, writes, issues)
    assert list(got) == expected
    assert med.stats.snapshot() == ref.stats.snapshot()
    for rb, vb in zip(ref.banks.banks, med.banks.banks):
        assert (rb.busy_until, rb.total_busy, rb.served) \
            == (vb.busy_until, vb.total_busy, vb.served)


def test_media_access_batch_entry_point():
    addrs, writes = [0, 256, 512, 300_000], [True, False, True, False]
    issues = [0, 0, 50, 90]
    expected = _media().access_batch(addrs, writes, issues, engine="scalar")
    got = _media().access_batch(addrs, writes, issues, engine="vector")
    auto = _media().access_batch(addrs, writes, issues)
    assert list(got) == list(expected) == list(auto)
    with pytest.raises(ConfigError, match="unknown batch engine"):
        _media().access_batch(addrs, writes, issues, engine="simd")


def test_instrumented_media_refuses_vector_path():
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    injector = FaultInjector(FaultPlan(specs=(), seed=1))
    media = XPointMedia(XPointConfig(capacity_bytes=1 << 20),
                        faults=injector)
    with pytest.raises(ValueError, match="uninstrumented"):
        media_access_batch(media, [0], [True], [0])


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=10 ** 9),
                          st.integers(min_value=0, max_value=10 ** 6)),
                max_size=50))
def test_batch_checksum_matches_merge_algebra(pairs):
    indices = [i for i, _ in pairs]
    completions = [c for _, c in pairs]
    assert batch_checksum(indices, completions) \
        == completion_checksum(zip(indices, completions))


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10 ** 8), max_size=50))
def test_batch_timeline_matches_scalar_buckets(completions):
    issues = [max(0, c - 37) for c in completions]
    interval = 1_000_000
    rows = {}
    for done, start in zip(completions, issues):
        bucket = done // interval
        n, busy = rows.get(bucket, (0, 0))
        rows[bucket] = (n + 1, busy + done - start)
    expected = [(b, n, busy) for b, (n, busy) in sorted(rows.items())]
    assert batch_timeline(completions, issues, interval) == expected


def test_fcfs_completions_is_pure():
    server_free = fcfs_completions([0, 0, 10], [5, 5, 5], busy0=0)
    assert list(server_free) == [5, 10, 15]
    busy = fcfs_completions([0, 0, 10], [5, 5, 5], busy0=100)
    assert list(busy) == [105, 110, 115]
