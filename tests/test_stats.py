"""Counters, histograms, series, registry."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.stats import Counter, Histogram, LatencySeries, StatsRegistry


class TestCounter:
    def test_add_and_reset(self):
        c = Counter("x")
        c.add()
        c.add(5)
        assert c.value == 6
        c.reset()
        assert c.value == 0


class TestHistogram:
    def test_mean_min_max(self):
        h = Histogram("lat")
        for v in (10, 20, 30):
            h.record(v)
        assert h.mean == 20
        assert h.min == 10
        assert h.max == 30
        assert h.count == 3

    def test_percentiles(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.record(v)
        assert h.percentile(50) == pytest.approx(50.5, abs=1)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100

    def test_empty_percentile(self):
        assert Histogram("x").percentile(50) == 0.0

    def test_decimation_preserves_extremes_and_mean(self):
        h = Histogram("lat", max_samples=128)
        for v in range(1000):
            h.record(v)
        assert h.count == 1000
        assert h.min == 0
        assert h.max == 999
        assert h.mean == pytest.approx(499.5)

    def test_percentile_extremes_survive_decimation(self):
        """p100/p0 answer from tracked max/min even if decimation
        dropped the extreme sample itself."""
        h = Histogram("lat", max_samples=4)
        for v in (1, 999, 2, 3):  # 999 lands on a decimated index
            h.record(v)
        assert 999 not in h._samples
        assert h.percentile(100) == 999.0
        lo = Histogram("lat", max_samples=4)
        for v in (5, 0, 6, 7):
            lo.record(v)
        assert 0 not in lo._samples
        assert lo.percentile(0) == 0.0

    def test_dropped_counts_decimated_samples(self):
        h = Histogram("lat", max_samples=4)
        for v in (10, 20):
            h.record(v)
        assert h.dropped == 0
        for v in (30, 40, 50):
            h.record(v)
        assert h.count == 5
        assert h.dropped == h.count - len(h._samples) > 0

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=500))
    def test_percentile_100_is_max_always(self, values):
        h = Histogram("x", max_samples=16)
        for v in values:
            h.record(v)
        assert h.percentile(100) == max(values)
        assert h.percentile(0) == min(values)

    def test_stddev(self):
        h = Histogram("x")
        for v in (2, 4, 4, 4, 5, 5, 7, 9):
            h.record(v)
        assert h.stddev() == pytest.approx(2.138, abs=0.01)

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=300))
    def test_mean_matches_total(self, values):
        h = Histogram("x")
        for v in values:
            h.record(v)
        assert h.mean == pytest.approx(sum(values) / len(values))
        assert h.min == min(values)
        assert h.max == max(values)


class TestLatencySeries:
    def test_points_ordering(self):
        s = LatencySeries("x")
        s.add(1, 10.0)
        s.add(2, 20.0)
        assert s.xs == [1, 2]
        assert s.values == [10.0, 20.0]
        assert len(s) == 2
        assert list(s) == [(1, 10.0), (2, 20.0)]


class TestStatsRegistry:
    def test_counter_identity(self):
        reg = StatsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_snapshot_and_diff(self):
        reg = StatsRegistry()
        reg.counter("a").add(3)
        before = reg.snapshot()
        reg.counter("a").add(2)
        reg.counter("b").add(1)
        diff = reg.diff(before)
        assert diff["a"] == 2
        assert diff["b"] == 1

    def test_histogram_in_snapshot(self):
        reg = StatsRegistry()
        reg.histogram("h").record(1)
        assert reg.snapshot()["h.count"] == 1

    def test_reset(self):
        reg = StatsRegistry()
        reg.counter("a").add(5)
        reg.reset()
        assert reg.counter("a").value == 0
