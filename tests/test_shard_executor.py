"""Shard executor: lockstep barrier, forked workers, document shape.

The heavy identity property (sharded == serial over random workloads)
lives in ``test_shard_merge_properties``; here the focus is the
execution machinery — forked-worker protocol, watchdog/error paths,
engine resolution, the CLI-facing document contract, and the
``run_stream`` integration.
"""

import json

import pytest

from repro.common.errors import ConfigError
from repro.experiments.exec import run_stream
from repro.shard import shard_session
from repro.shard.executor import (
    DEFAULT_INTERVAL_PS,
    SHARD_SCHEMA,
    ShardError,
    execute_forked,
    execute_inprocess,
    identity_view,
    merge_payloads,
    prepare,
    run_shard_stream,
)
from repro.shard.stream import synthetic_stream

OVERRIDES = {"ndimms": 4, "interleaved": True}


def _ops(n=800, kind="burst", seed=0):
    return synthetic_stream(kind, n, fence_every=200, write_ratio=0.5,
                            seed=seed)


def _canon(doc):
    return json.dumps(identity_view(doc), sort_keys=True)


def test_document_shape():
    doc = run_shard_stream("vans", _ops(), shards=2, overrides=OVERRIDES,
                           fork=False)
    assert doc["schema"] == SHARD_SCHEMA
    assert doc["target"] == "vans"
    assert doc["plan"]["effective"] == 2
    assert doc["ops"] == 800
    assert doc["counts"]["fence"] == 4
    assert doc["counts"]["read"] + doc["counts"]["write"] \
        + doc["counts"]["write_nt"] == 800
    assert doc["epochs"] == 4
    assert doc["sim_end_ps"] > 0
    assert doc["busy_ps"] > 0
    assert doc["latency_min_ps"] <= doc["latency_max_ps"]
    assert int(doc["checksum"], 16) > 0
    assert doc["timeline"]["interval_ps"] == DEFAULT_INTERVAL_PS
    assert sum(doc["timeline"]["series"]["requests"].values()) == 800
    assert doc["instrumentation"]
    assert doc["fork"] is False


def test_forked_equals_inprocess():
    ops = _ops()
    inproc = run_shard_stream("vans", ops, shards=2, overrides=OVERRIDES,
                              fork=False)
    forked = run_shard_stream("vans", ops, shards=2, overrides=OVERRIDES,
                              fork=True)
    assert forked["fork"] is True
    assert _canon(forked) == _canon(inproc)


def test_media_level_engines_agree():
    ops = _ops(kind="rand")
    scalar = run_shard_stream("vans", ops, shards=2, overrides=OVERRIDES,
                              level="media", engine="scalar", fork=False)
    vector = run_shard_stream("vans", ops, shards=2, overrides=OVERRIDES,
                              level="media", engine="vector", fork=False)
    assert scalar["engine"] == "scalar" and vector["engine"] == "vector"
    assert _canon(scalar) == _canon(vector)


def test_single_shard_forces_inprocess():
    doc = run_shard_stream("vans", _ops(200), shards=1,
                           overrides=OVERRIDES, fork=True)
    assert doc["fork"] is False  # nothing to parallelize


def test_identity_view_drops_variant_keys():
    doc = run_shard_stream("vans", _ops(200), shards=2,
                           overrides=OVERRIDES, fork=False)
    view = identity_view(doc)
    for key in ("plan", "engine", "fork"):
        assert key in doc and key not in view


def test_execute_primitives_match_run():
    ops = _ops(400)
    prepared = prepare("vans", ops, shards=2, overrides=OVERRIDES)
    sim_end, payloads = execute_inprocess(prepared)
    doc = merge_payloads(prepared, sim_end, payloads, fork=False)
    assert _canon(doc) == _canon(
        run_shard_stream("vans", ops, shards=2, overrides=OVERRIDES,
                         fork=False))
    sim_end_f, payloads_f = execute_forked(prepared)
    assert sim_end_f == sim_end
    doc_f = merge_payloads(prepared, sim_end_f, payloads_f, fork=True)
    assert _canon(doc_f) == _canon(doc)


def test_prepared_reset_supports_re_execution():
    prepared = prepare("vans", _ops(300), shards=2, overrides=OVERRIDES)
    first = execute_inprocess(prepared)
    prepared.reset()
    second = execute_inprocess(prepared)
    assert first[0] == second[0]
    assert first[1] == second[1]


def test_system_level_rejects_vector_engine():
    with pytest.raises(ConfigError, match="scalar"):
        prepare("vans", _ops(100), shards=2, overrides=OVERRIDES,
                level="system", engine="vector")


def test_unknown_level_and_engine_rejected():
    with pytest.raises(ConfigError, match="unknown shard level"):
        prepare("vans", _ops(100), level="dimm")
    with pytest.raises(ConfigError, match="unknown shard engine"):
        prepare("vans", _ops(100), engine="simd")


def test_targets_without_imc_rejected():
    with pytest.raises(ShardError, match="interleave map"):
        prepare("pmep", _ops(100))


def test_chained_ops_rejected_with_pointer():
    with pytest.raises(ValueError, match="chained-plane"):
        prepare("vans", [{"op": "store", "addr": 0}])


def test_worker_failure_surfaces_with_traceback():
    prepared = prepare("vans", _ops(100), shards=2, overrides=OVERRIDES)
    prepared.overrides["wpq_entries"] = "garbage"  # poison the rebuild
    with pytest.raises(ShardError, match="worker failed"):
        execute_forked(prepared, timeout_s=30.0)


# -- run_stream integration -------------------------------------------------

def test_run_stream_open_loop_routes_to_shard_plane():
    ops = [{"op": "read", "addr": 0, "count": 256, "stride": 64},
           {"op": "fence"}]
    doc = run_stream("vans", ops, issue="open", shards=2)
    assert doc["schema"] == SHARD_SCHEMA
    assert doc["ops"] == 256
    serial = run_stream("vans", ops, issue="open", shards=1)
    assert _canon(doc) == _canon(serial)


def test_run_stream_shards_imply_open_loop_validation():
    ops = [{"op": "read", "count": 16}]
    with pytest.raises(ValueError, match="open"):
        run_stream("vans", ops, issue="chained", shards=2)
    with pytest.raises(ValueError, match="unknown issue"):
        run_stream("vans", ops, issue="loopy")


def test_run_stream_shard_plane_refuses_faults():
    ops = [{"op": "read", "count": 16}, {"op": "fence"}]
    from repro.faults.plan import FaultPlan
    with pytest.raises(ValueError, match="uninstrumented"):
        run_stream("vans", ops, issue="open", shards=2,
                   faults=FaultPlan(specs=(), seed=1))


def test_shard_session_default_reaches_run_stream():
    ops = [{"op": "read", "addr": 0, "count": 128, "stride": 64},
           {"op": "fence"}]
    with shard_session(2):
        doc = run_stream("vans", ops, issue="open",
                         overrides=dict(OVERRIDES))
    assert doc["schema"] == SHARD_SCHEMA
    assert doc["plan"]["requested"] == 2
    # chained streams ignore the session default entirely
    chained = run_stream("vans", [{"op": "read", "count": 8}])
    assert "plan" not in chained
