"""System-level invariants of VANS, checked with hypothesis.

These are the contracts every TargetSystem consumer (LENS, the CPU
model, the attach port) relies on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import MIB
from repro.vans import VansConfig, VansSystem

ADDRS = st.integers(0, (64 * MIB) // 64 - 1).map(lambda line: line * 64)
OPS = st.lists(st.tuples(ADDRS, st.sampled_from(["r", "w", "f"])),
               min_size=1, max_size=80)


@settings(max_examples=40, deadline=None)
@given(OPS)
def test_time_never_goes_backwards(ops):
    """Completions are >= issue times, and a serialized driver's clock
    is non-decreasing through any mix of reads, writes and fences."""
    system = VansSystem()
    now = 0
    for addr, op in ops:
        if op == "r":
            done = system.read(addr, now)
        elif op == "w":
            done = system.write(addr, now)
        else:
            done = system.fence(now)
        assert done >= now
        now = done


@settings(max_examples=30, deadline=None)
@given(OPS)
def test_fence_is_idempotent(ops):
    """A second fence immediately after a fence is free."""
    system = VansSystem()
    now = 0
    for addr, op in ops:
        now = system.write(addr, now) if op == "w" else system.read(addr, now)
    drained = system.fence(now)
    assert system.fence(drained) == drained


@settings(max_examples=30, deadline=None)
@given(st.lists(ADDRS, min_size=1, max_size=60))
def test_read_latency_bounded(addrs):
    """Every read lands within the physically possible window: at least
    the frontend+hit path, at most a full miss chain plus queueing."""
    system = VansSystem()
    t = system.config.dimm.timing
    floor = t.frontend_read_ps
    now = 0
    for addr in addrs:
        done = system.read(addr, now)
        latency = done - now
        assert latency >= floor
        assert latency < 5_000_000  # 5us: far above any legal miss chain
        now = done


@settings(max_examples=25, deadline=None)
@given(st.lists(ADDRS, min_size=4, max_size=50), st.integers(2, 6))
def test_interleaving_preserves_request_counts(addrs, ndimms):
    """Every request is serviced by exactly one DIMM, whatever the
    interleaving."""
    system = VansSystem(VansConfig().with_dimms(ndimms))
    now = 0
    for addr in addrs:
        now = system.read(addr, now)
    per_dimm = [d.stats for d in system.imc.dimms]
    total = system.counters()["dimm.reads"]
    assert total == len(addrs)


@settings(max_examples=25, deadline=None)
@given(st.lists(ADDRS, min_size=1, max_size=40))
def test_determinism(addrs):
    """Identical request streams produce identical timings."""
    def run():
        system = VansSystem()
        now = 0
        out = []
        for addr in addrs:
            now = system.read(addr, now)
            out.append(now)
        return out

    assert run() == run()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(ADDRS, st.booleans()), min_size=1, max_size=50))
def test_counters_match_traffic(ops):
    system = VansSystem()
    now = 0
    reads = writes = 0
    for addr, is_write in ops:
        if is_write:
            now = system.write(addr, now)
            writes += 1
        else:
            now = system.read(addr, now)
            reads += 1
    counters = system.counters()
    assert counters["imc.reads"] == reads
    assert counters["imc.writes"] == writes


@settings(max_examples=20, deadline=None)
@given(st.lists(ADDRS, min_size=1, max_size=30))
def test_warm_fill_never_slows_reads(addrs):
    """Warm state is strictly beneficial for the same access stream."""
    cold = VansSystem()
    now = 0
    for addr in addrs:
        now = cold.read(addr, now)
    cold_total = now

    warm = VansSystem()
    warm.warm_fill(0, 64 * MIB)
    now = 0
    for addr in addrs:
        now = warm.read(addr, now)
    assert now <= cold_total
