"""Digitized Optane reference model: tiers, orderings, and shapes the
paper reports must hold by construction."""

import pytest

from repro.common.units import KIB, MIB
from repro.reference import OptaneReference, SPEC_REFERENCE
from repro.reference.optane import (
    OVERWRITE_TAIL_INTERVAL,
    READ_TIER_AIT_NS,
    READ_TIER_MEDIA_NS,
    READ_TIER_RMW_NS,
)


@pytest.fixture
def ref():
    return OptaneReference(noise=0.0)


class TestReadCurve:
    def test_three_tiers(self, ref):
        assert ref.pc_read_latency_ns(1 * KIB) == pytest.approx(READ_TIER_RMW_NS)
        mid = ref.pc_read_latency_ns(1 * MIB)
        assert READ_TIER_RMW_NS < mid < READ_TIER_MEDIA_NS
        big = ref.pc_read_latency_ns(512 * MIB)
        assert big > READ_TIER_AIT_NS

    def test_monotone_in_region(self, ref):
        regions = [1 * KIB << i for i in range(0, 18, 2)]
        values = [ref.pc_read_latency_ns(r) for r in regions]
        assert values == sorted(values)

    def test_inflections_at_buffer_capacities(self, ref):
        at_16k = ref.pc_read_latency_ns(16 * KIB)
        at_64k = ref.pc_read_latency_ns(64 * KIB)
        assert at_64k / at_16k > 1.3

    def test_block_amortization(self, ref):
        small_block = ref.pc_read_latency_ns(1 * MIB, block_bytes=64)
        big_block = ref.pc_read_latency_ns(1 * MIB, block_bytes=256)
        assert big_block < small_block

    def test_ndimms_scales_reach(self, ref):
        one = ref.pc_read_latency_ns(64 * KIB, ndimms=1)
        six = ref.pc_read_latency_ns(64 * KIB, ndimms=6)
        assert six < one


class TestStoreCurve:
    def test_tiers(self, ref):
        assert ref.pc_store_latency_ns(256) < ref.pc_store_latency_ns(2 * KIB)
        assert ref.pc_store_latency_ns(2 * KIB) < ref.pc_store_latency_ns(64 * KIB)


class TestRaw:
    def test_raw_exceeds_r_plus_w_at_small_regions(self, ref):
        region = 1 * KIB
        rpw = ref.pc_read_latency_ns(region) + ref.pc_store_latency_ns(region)
        assert ref.raw_latency_ns(region) > 1.5 * rpw

    def test_raw_converges_at_large_regions(self, ref):
        region = 16 * MIB
        rpw = ref.pc_read_latency_ns(region) + ref.pc_store_latency_ns(region)
        assert ref.raw_latency_ns(region) < 1.15 * rpw


class TestAmplification:
    def test_rmw_score_floors_at_entry(self, ref):
        assert ref.read_amp_score(64, "rmw") > ref.read_amp_score(256, "rmw")
        assert ref.read_amp_score(256, "rmw") == pytest.approx(
            ref.read_amp_score(512, "rmw"), rel=0.1)


class TestBandwidth:
    def test_optane_ordering(self, ref):
        load = ref.bandwidth_gbs("load")
        nt = ref.bandwidth_gbs("store-nt")
        store = ref.bandwidth_gbs("store")
        assert load > nt > store

    def test_pmep_inverts_nt(self, ref):
        nt = ref.bandwidth_gbs("store-nt", "pmep-6dimm")
        store = ref.bandwidth_gbs("store", "pmep-6dimm")
        assert store > nt


class TestOverwrite:
    def test_tail_every_interval(self, ref):
        assert ref.overwrite_latency_us(OVERWRITE_TAIL_INTERVAL) > \
            20 * ref.overwrite_latency_us(1)

    def test_tail_ratio_drops_past_64k(self, ref):
        assert ref.tail_ratio_permille(64 * KIB) > \
            3 * ref.tail_ratio_permille(256 * KIB)


class TestSpecReference:
    def test_thirteen_workloads(self):
        assert len(SPEC_REFERENCE) == 13

    def test_table_iv_values(self, ref):
        mcf = ref.spec_row("mcf")
        assert mcf.llc_mpki == 27.1
        assert mcf.footprint_gb == 9.1

    def test_speedups_below_one(self):
        assert all(0 < r.nvram_speedup < 1 for r in SPEC_REFERENCE)

    def test_memory_intensity_correlates_with_slowdown(self):
        """Higher MPKI -> more NVRAM-bound -> lower speedup."""
        hi = [r.nvram_speedup for r in SPEC_REFERENCE if r.llc_mpki > 20]
        lo = [r.nvram_speedup for r in SPEC_REFERENCE if r.llc_mpki < 3]
        assert max(hi) < min(lo)

    def test_unknown_row_raises(self, ref):
        with pytest.raises(KeyError):
            ref.spec_row("nope")


def test_noise_is_bounded_and_deterministic():
    a = OptaneReference(noise=0.02, seed=5)
    b = OptaneReference(noise=0.02, seed=5)
    va = [a.pc_read_latency_ns(1 * MIB) for _ in range(5)]
    vb = [b.pc_read_latency_ns(1 * MIB) for _ in range(5)]
    assert va == vb
    clean = OptaneReference(noise=0.0).pc_read_latency_ns(1 * MIB)
    assert all(abs(v - clean) / clean <= 0.021 for v in va)


def test_profiles_shape():
    ref = OptaneReference()
    redis = ref.redis_profile()
    assert redis["cpi"][0] == pytest.approx(8.8)
    ycsb = ref.ycsb_profile()
    assert ycsb["wear_leveling"][0] == pytest.approx(503.0)
