"""VANS configuration tree."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import GIB, KIB, MIB
from repro.vans.config import (
    AitConfig,
    DimmConfig,
    LsqConfig,
    RmwConfig,
    VansConfig,
    WpqConfig,
    optane_config,
)


def test_default_matches_paper_parameters():
    cfg = VansConfig()
    assert cfg.wpq.capacity_bytes == 512
    assert cfg.dimm.lsq.capacity_bytes == 4 * KIB
    assert cfg.dimm.rmw.capacity_bytes == 16 * KIB
    assert cfg.dimm.ait.capacity_bytes == 16 * MIB
    assert cfg.interleave_bytes == 4 * KIB
    assert cfg.dimm.wear.block_bytes == 64 * KIB
    assert cfg.dimm.wear.migrate_threshold == 14_000


def test_entry_sizes_match_paper():
    cfg = VansConfig()
    assert cfg.dimm.rmw.entry_bytes == 256
    assert cfg.dimm.ait.entry_bytes == 4 * KIB
    assert cfg.dimm.lsq.combine_bytes == 256
    assert cfg.wpq.entry_bytes == 64


def test_with_dimms():
    cfg = VansConfig().with_dimms(6)
    assert cfg.ndimms == 6
    assert cfg.interleaved
    single = cfg.with_dimms(1)
    assert not single.interleaved


def test_with_media_capacity():
    cfg = VansConfig().with_media_capacity(8 * GIB)
    assert cfg.dimm.media.capacity_bytes == 8 * GIB
    # other parameters untouched
    assert cfg.dimm.rmw.capacity_bytes == 16 * KIB


def test_with_lazy_cache():
    assert not VansConfig().dimm.lazy_cache
    assert VansConfig().with_lazy_cache().dimm.lazy_cache


def test_total_capacity():
    cfg = optane_config(ndimms=6)
    assert cfg.total_capacity_bytes == 6 * cfg.dimm.media.capacity_bytes


def test_describe_keys():
    desc = VansConfig().describe()
    for key in ("wpq_bytes", "lsq_bytes", "rmw_bytes", "ait_bytes",
                "wear_block_bytes", "interleave_bytes"):
        assert key in desc


def test_interleaving_requires_multiple_dimms():
    with pytest.raises(ConfigError):
        VansConfig(ndimms=1, interleaved=True)


def test_ait_must_fit_on_dimm_dram():
    with pytest.raises(ConfigError):
        DimmConfig(ait=AitConfig(entries=1 << 20))  # 4GB > 512MB DRAM


def test_rmw_entry_multiple_of_combine():
    with pytest.raises(ConfigError):
        DimmConfig(rmw=RmwConfig(entry_bytes=384),
                   lsq=LsqConfig(combine_bytes=256))


def test_interleave_power_of_two():
    with pytest.raises(ConfigError):
        VansConfig(interleave_bytes=3000)


def test_config_is_immutable():
    cfg = VansConfig()
    with pytest.raises(Exception):
        cfg.ndimms = 4
