"""Two-socket NUMA wrapper."""

import pytest

from repro.common.units import GIB, KIB, MIB
from repro.vans import VansSystem
from repro.vans.numa import NumaSystem


@pytest.fixture
def numa():
    return NumaSystem(VansSystem(), VansSystem(), node_bytes=1 * GIB)


def test_local_access_unchanged(numa):
    plain = VansSystem().read(0, 0)
    assert numa.read(0, 0) == plain


def test_remote_read_pays_hops(numa):
    local = numa.read(0, 0)
    remote = NumaSystem(VansSystem(), VansSystem(),
                        node_bytes=1 * GIB).read(2 * GIB, 0)
    assert remote > local + numa.hop_latency_ps


def test_routing_counters(numa):
    numa.read(0, 0)
    numa.read(2 * GIB, 0)
    numa.read(2 * GIB + 64, 10**7)
    assert numa.remote_fraction == pytest.approx(2 / 3)


def test_remote_addresses_rebased(numa):
    """Remote accesses land at node-local offsets on the remote system."""
    numa.read(1 * GIB, 0)  # first byte of node 1
    assert numa.remote.counters()["dimm.reads"] == 1


def test_link_serializes_remote_traffic():
    numa = NumaSystem(VansSystem(), VansSystem(), node_bytes=1 * GIB,
                      link_line_ps=50_000)
    base = 2 * GIB
    # two back-to-back remote reads to different pages contend on the link
    a = numa.read(base, 0)
    numa2 = NumaSystem(VansSystem(), VansSystem(), node_bytes=1 * GIB,
                       link_line_ps=50_000)
    numa2.read(base, 0)
    b = numa2.read(base + 8 * KIB, 0)
    assert b > a  # second issue at the same instant queues on the link


def test_remote_write_slower_than_local(numa):
    local = numa.write(0, 0)
    remote = NumaSystem(VansSystem(), VansSystem(),
                        node_bytes=1 * GIB).write(2 * GIB, 0)
    assert remote > local


def test_fence_covers_both_nodes(numa):
    now = numa.write(2 * GIB, 0)
    done = numa.fence(now)
    assert done >= now + numa.hop_latency_ps


def test_warm_fill_splits_by_node(numa):
    numa.warm_fill(1 * GIB - 32 * KIB, 64 * KIB)
    assert len(numa.local.dimm._rmw_tags) > 0
    assert len(numa.remote.dimm._ait_tags) > 0
