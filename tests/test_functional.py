"""Functional layer: read-your-writes and the persistence contract."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vans.functional import FunctionalMemory


@pytest.fixture
def mem():
    return FunctionalMemory()


def test_read_your_write(mem):
    now = mem.store(0x100, "hello", 0)
    value, done = mem.load(0x100, now)
    assert value == "hello"
    assert done > now


def test_unwritten_is_none(mem):
    value, _ = mem.load(0x500, 0)
    assert value is None


def test_line_granularity(mem):
    mem.store(0x100, 42, 0)
    value, _ = mem.load(0x13F, 0)  # same 64B line
    assert value == 42
    value, _ = mem.load(0x140, 0)  # next line
    assert value is None


def test_fenced_nt_store_survives_any_crash(mem):
    now = mem.store(0, "durable", 0, nt=True)
    mem.fence(now)
    mem.crash(pending_policy="drop")
    assert mem.persisted_value(0) == "durable"


def test_unfenced_nt_store_is_uncertain(mem):
    mem.store(0, "maybe", 0, nt=True)
    mem.crash(pending_policy="drop")
    assert mem.persisted_value(0) is None
    mem2 = FunctionalMemory()
    mem2.store(0, "maybe", 0, nt=True)
    mem2.crash(pending_policy="keep")
    assert mem2.persisted_value(0) == "maybe"


def test_cached_store_always_lost_on_crash(mem):
    mem.store(0, "volatile", 0, nt=False)
    mem.crash(pending_policy="keep")  # even the generous policy
    assert mem.persisted_value(0) is None


def test_flush_plus_fence_makes_cached_store_durable(mem):
    now = mem.store(0, "v1", 0, nt=False)
    now = mem.flush_line(0, now)
    mem.fence(now)
    mem.crash(pending_policy="drop")
    assert mem.persisted_value(0) == "v1"


def test_flush_of_clean_line_is_free(mem):
    assert mem.flush_line(0x40, 123) == 123


def test_newest_value_wins(mem):
    now = mem.store(0, "old", 0)
    now = mem.store(0, "new", now)
    value, _ = mem.load(0, now)
    assert value == "new"


def test_volatile_shadows_pending_and_persistent(mem):
    now = mem.store(0, "persisted", 0, nt=True)
    now = mem.fence(now)
    mem.store(0, "newer", now, nt=False)
    value, _ = mem.load(0, now)
    assert value == "newer"
    assert mem.persisted_value(0) == "persisted"


def test_pending_and_dirty_accounting(mem):
    mem.store(0, 1, 0, nt=False)
    mem.store(64, 2, 0, nt=True)
    assert mem.dirty_volatile_lines == 1
    assert mem.pending_lines == 1
    mem.fence(0)
    assert mem.pending_lines == 0


def test_random_crash_is_deterministic_per_seed(mem):
    for i in range(8):
        mem.store(i * 64, i, 0, nt=True)
    import copy
    survived = []
    for _ in range(2):
        clone = FunctionalMemory()
        for i in range(8):
            clone.store(i * 64, i, 0, nt=True)
        clone.crash(pending_policy="random", seed=5)
        survived.append([clone.persisted_value(i * 64) for i in range(8)])
    assert survived[0] == survived[1]


def test_bad_policy_rejected(mem):
    with pytest.raises(ValueError):
        mem.crash(pending_policy="sometimes")


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 10**6),
                          st.booleans()),
                min_size=1, max_size=60))
def test_recovery_matches_fenced_history(ops):
    """Property: after a crash (worst-case pending drop), every line
    holds the value of its last *fenced* nt-store."""
    mem = FunctionalMemory()
    expected = {}
    now = 0
    for line, value, nt in ops:
        addr = line * 64
        now = max(now, mem.store(addr, value, now, nt=nt))
        if nt:
            now = mem.fence(now)
            expected[addr] = value
    mem.crash(pending_policy="drop")
    for line, _, _ in ops:
        addr = line * 64
        assert mem.persisted_value(addr) == expected.get(addr)
