"""Trace-driven core model."""

import pytest

from repro.baselines.slow_dram import ramulator_ddr4
from repro.cpu.core import CoreConfig, TraceCore
from repro.cpu.system import MemOp


def make_core(**kwargs):
    return TraceCore(ramulator_ddr4(), config=CoreConfig(**kwargs))


def test_nonmem_instructions_retire_at_width():
    core = make_core(width=4)
    core.execute([MemOp(nonmem=400, vaddr=0)])
    # 400 nonmem at width 4 = 100 cycles + the memory access
    assert core.cycles >= 100
    assert core.instructions == 401


def test_cache_hits_are_cheap():
    core = make_core()
    core.execute([MemOp(nonmem=0, vaddr=0)])
    miss_cycles = core.cycles
    core.execute([MemOp(nonmem=0, vaddr=0)])
    assert core.cycles - miss_cycles < miss_cycles / 4


def _spread_addr(i):
    """Distinct pages that also spread DRAM channels and banks, so
    memory-level parallelism is limited by the core, not one bank."""
    return i * ((1 << 21) + 64)


def test_dependent_loads_serialize():
    """Pointer chasing: dependent misses cost full latency each."""
    def run(dependent):
        core = make_core(mlp=8)
        ops = [MemOp(nonmem=0, vaddr=_spread_addr(i), dependent=dependent)
               for i in range(16)]
        core.execute(ops)
        return core.cycles

    assert run(True) > 1.5 * run(False)


def test_mlp_bounds_overlap():
    def run(mlp):
        core = make_core(mlp=mlp)
        ops = [MemOp(nonmem=0, vaddr=_spread_addr(i)) for i in range(64)]
        core.execute(ops)
        return core.cycles

    assert run(1) > run(8)


def test_tlb_walk_costs_cycles():
    """Sequential same-page ops avoid walks; page-hopping ops pay them."""
    same_page = make_core()
    same_page.execute([MemOp(nonmem=0, vaddr=64 * i) for i in range(32)])
    hopping = make_core()
    hopping.execute([MemOp(nonmem=0, vaddr=(1 << 22) * i) for i in range(32)])
    assert hopping.cycles > same_page.cycles


def test_persistent_write_reaches_backend():
    core = make_core()
    core.execute([MemOp(nonmem=0, vaddr=0, is_write=True, persistent=True)])
    assert core.backend.dram.stats.counter("dram.writes").value >= 1


def test_cached_write_stays_in_caches():
    core = make_core()
    core.execute([MemOp(nonmem=0, vaddr=0, is_write=True)])
    assert core.backend.dram.stats.counter("dram.writes").value == 0


def test_ipc_definition():
    core = make_core()
    core.execute([MemOp(nonmem=10, vaddr=0)])
    assert core.ipc == pytest.approx(core.instructions / core.cycles)


def test_measurement_window():
    core = make_core()
    core.execute([MemOp(nonmem=100, vaddr=i * 64) for i in range(10)])
    core.begin_measurement()
    assert core.measured_instructions == 0
    core.execute([MemOp(nonmem=100, vaddr=0)])
    assert core.measured_instructions == 101
    assert core.measured_cycles > 0
    assert core.instructions == 10 * 101 + 101  # global count keeps going


def test_phase_attribution():
    core = make_core()
    core.execute([
        MemOp(nonmem=10, vaddr=0, phase="read"),
        MemOp(nonmem=10, vaddr=1 << 22, phase="rest"),
    ])
    stats = core.phase_stats
    assert stats.instructions["read"] == 11
    assert stats.instructions["rest"] == 11
    assert stats.cpi("read") > 0
    assert stats.cpi("nonexistent") == 0.0


def test_max_ops_limit():
    core = make_core()
    core.execute((MemOp(nonmem=0, vaddr=0) for _ in range(1000)), max_ops=5)
    assert core.instructions == 5
