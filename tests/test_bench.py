"""repro-bench: suite runs, document schema, baseline diff + gate."""

import copy
import json
import os

import pytest

from repro.telemetry.bench import (
    BENCH_SCHEMA,
    SUITES,
    Delta,
    diff_bench,
    find_baseline,
    gate,
    run_suite,
    suite_ids,
    validate_bench,
)
from repro.tools import bench_cli


@pytest.fixture(scope="module")
def tiny_doc():
    """One real (fast) suite run, shared across this module's tests."""
    SUITES["_tiny"] = ("fig1",)
    try:
        return run_suite("_tiny")
    finally:
        del SUITES["_tiny"]


class TestSuites:
    def test_known_suites_resolve(self):
        for name in SUITES:
            ids = suite_ids(name)
            assert ids, name

    def test_full_is_whole_registry(self):
        from repro.experiments.runner import REGISTRY
        assert suite_ids("full") == list(REGISTRY)

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError):
            suite_ids("nope")


class TestRunSuite:
    def test_document_is_valid_and_complete(self, tiny_doc):
        assert validate_bench(tiny_doc) == []
        assert tiny_doc["schema"] == BENCH_SCHEMA
        entry = tiny_doc["experiments"]["fig1"]
        assert entry["requests"] > 0
        assert entry["wall_s"] > 0
        assert entry["requests_per_s"] > 0
        assert entry["metrics"]  # model outputs captured
        assert tiny_doc["totals"]["requests"] == entry["requests"]

    def test_manifest_embedded(self, tiny_doc):
        from repro.telemetry.manifest import validate_manifest
        assert validate_manifest(tiny_doc["manifest"]) == []
        assert tiny_doc["manifest"]["config"]["suite"] == "_tiny"

    def test_json_round_trip(self, tiny_doc):
        assert validate_bench(json.loads(json.dumps(tiny_doc))) == []


class TestValidate:
    def test_flags_missing_keys(self):
        problems = validate_bench({"schema": BENCH_SCHEMA})
        assert any("experiments" in p for p in problems)

    def test_flags_wrong_schema(self):
        assert any("schema" in p for p in validate_bench({"schema": "x/0"}))


class TestDiffAndGate:
    def _pair(self, tiny_doc):
        old = copy.deepcopy(tiny_doc)
        new = copy.deepcopy(tiny_doc)
        return old, new

    def test_identical_runs_have_no_metric_drift(self, tiny_doc):
        old, new = self._pair(tiny_doc)
        deltas = diff_bench(old, new)
        assert deltas["metrics"] == []
        assert gate(deltas, "all") == []

    def test_metric_drift_gates(self, tiny_doc):
        old, new = self._pair(tiny_doc)
        key = next(iter(new["experiments"]["fig1"]["metrics"]))
        new["experiments"]["fig1"]["metrics"][key] *= 1.10
        deltas = diff_bench(old, new)
        assert len(deltas["metrics"]) == 1
        assert gate(deltas, "metrics")
        assert gate(deltas, "perf") == []
        assert gate(deltas, "none") == []

    def test_request_count_change_is_a_metric(self, tiny_doc):
        old, new = self._pair(tiny_doc)
        new["experiments"]["fig1"]["requests"] += 1
        deltas = diff_bench(old, new)
        assert any(d.key == "fig1.requests" for d in deltas["metrics"])

    def test_perf_gate_only_fails_slowdowns(self, tiny_doc):
        old, new = self._pair(tiny_doc)
        new["experiments"]["fig1"]["wall_s"] = \
            old["experiments"]["fig1"]["wall_s"] * 2
        slow = gate(diff_bench(old, new), "perf")
        assert any(d.key == "fig1.wall_s" for d in slow)
        # a 2x speedup must NOT gate
        new["experiments"]["fig1"]["wall_s"] = \
            old["experiments"]["fig1"]["wall_s"] / 2
        assert gate(diff_bench(old, new), "perf") == []

    def test_delta_render(self):
        delta = Delta("x.y", "metric", 10.0, 11.0)
        assert "+10.00%" in delta.render()
        assert delta.exceeds(0.05)
        assert not delta.exceeds(0.2)


class TestBaselineDiscovery:
    def test_latest_by_name_excluding_output(self, tmp_path):
        for name in ("BENCH_2026-08-01.json", "BENCH_2026-08-05.json",
                     "BENCH_2026-08-06.json", "other.json"):
            (tmp_path / name).write_text("{}")
        latest = find_baseline(str(tmp_path), exclude="BENCH_2026-08-06.json")
        assert os.path.basename(latest) == "BENCH_2026-08-05.json"

    def test_empty_or_missing_directory(self, tmp_path):
        assert find_baseline(str(tmp_path)) is None
        assert find_baseline(str(tmp_path / "absent")) is None


class TestCli:
    def test_list_suites(self, capsys):
        assert bench_cli.main(["--list"]) == 0
        assert "smoke:" in capsys.readouterr().out

    def test_check_valid_document(self, tmp_path, tiny_doc, capsys):
        path = tmp_path / "BENCH_2026-08-05.json"
        path.write_text(json.dumps(tiny_doc))
        assert bench_cli.main(["--check", str(path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_check_invalid_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert bench_cli.main(["--check", str(path)]) == bench_cli.EXIT_USAGE

    def test_run_diff_and_regression_gate(self, tmp_path, tiny_doc):
        """End-to-end: doctored baseline -> exit 3 on the metrics gate."""
        SUITES["_tiny"] = ("fig1",)
        try:
            baseline = copy.deepcopy(tiny_doc)
            key = next(iter(baseline["experiments"]["fig1"]["metrics"]))
            baseline["experiments"]["fig1"]["metrics"][key] *= 1.5
            base_path = tmp_path / "BENCH_2026-01-01.json"
            base_path.write_text(json.dumps(baseline))
            code = bench_cli.main([
                "--suite", "_tiny", "--out", str(tmp_path),
                "--date", "2026-01-02", "--gate", "metrics"])
            assert code == bench_cli.EXIT_REGRESSION
            # same run, gate off -> clean exit, artifact written
            code = bench_cli.main([
                "--suite", "_tiny", "--out", str(tmp_path),
                "--date", "2026-01-03", "--gate", "none"])
            assert code == 0
            written = json.loads(
                (tmp_path / "BENCH_2026-01-03.json").read_text())
            assert validate_bench(written) == []
        finally:
            del SUITES["_tiny"]
