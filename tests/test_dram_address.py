"""DRAM address mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.dram.address import AddressMapping


def test_sequential_lines_share_rows():
    mapping = AddressMapping(nbanks=16, row_bytes=8192)
    bank0, row0, col0 = mapping.decompose(0)
    bank1, row1, col1 = mapping.decompose(64)
    assert (bank0, row0) == (bank1, row1)
    assert col1 == col0 + 1


def test_row_crossing_changes_bank():
    mapping = AddressMapping(nbanks=16, row_bytes=8192)
    bank_a, row_a, _ = mapping.decompose(8192 - 64)
    bank_b, row_b, _ = mapping.decompose(8192)
    assert (bank_a, row_a) != (bank_b, row_b)


def test_cols_per_row():
    assert AddressMapping(row_bytes=8192).cols_per_row == 128


def test_invalid_configs():
    with pytest.raises(ConfigError):
        AddressMapping(nbanks=3)
    with pytest.raises(ConfigError):
        AddressMapping(row_bytes=100)


@given(st.integers(min_value=0, max_value=(1 << 34) - 64))
def test_decompose_compose_roundtrip(addr):
    mapping = AddressMapping()
    line_base = addr - (addr % 64)
    bank, row, col = mapping.decompose(addr)
    assert 0 <= bank < mapping.nbanks
    assert 0 <= col < mapping.cols_per_row
    assert mapping.compose(bank, row, col) == line_base
