"""Scaling study and ablation experiments."""

import pytest

from repro.experiments import ablation, scaling
from repro.experiments.common import Scale


class TestScaling:
    @pytest.fixture(scope="class")
    def read_result(self):
        return scaling.run_read_scaling(Scale.SMOKE)

    def test_nvram_reads_saturate(self, read_result):
        """The paper's pathology: NVRAM thread scaling is far from
        ideal while DRAM keeps scaling."""
        assert read_result.metrics["nvram_scaling_16t"] < 4.0

    def test_dram_scales_much_better(self, read_result):
        by_threads = {row[0]: row for row in read_result.rows}
        dram_scaling = by_threads[16][2] / by_threads[1][2]
        assert dram_scaling > 2 * read_result.metrics["nvram_scaling_16t"]

    def test_write_bandwidth_flatlines(self):
        result = scaling.run_write_scaling(Scale.SMOKE)
        assert result.metrics["nvram_scaling_16t"] < 1.6
        # per-thread bandwidth collapses
        first, last = result.rows[0], result.rows[-1]
        assert last[2] < first[2] / 4


class TestAblation:
    def test_write_combining_matters(self):
        result = ablation.run_write_combining(Scale.SMOKE)
        assert result.metrics["combining_gain"] > 1.5

    def test_engine_hold_creates_plateau(self):
        result = ablation.run_engine_hold(Scale.SMOKE)
        assert result.metrics["plateau_ratio"] > 1.3

    def test_wear_decay_suppresses_migrations(self):
        result = ablation.run_wear_decay(Scale.SMOKE)
        assert result.metrics["plain_migrations"] > \
            result.metrics["aged_migrations"]

    def test_critical_block_first_saves_latency(self):
        result = ablation.run_critical_block_first(Scale.SMOKE)
        assert result.metrics["latency_saving_ns"] > 100
