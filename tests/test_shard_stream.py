"""Epoch compiler, interleave partitioner, synthetic workloads."""

import pytest

from repro.shard.plan import ShardPlan
from repro.shard.stream import (
    compile_epochs,
    partition,
    synthetic_stream,
    total_requests,
)
from repro.vans.interleave import Interleaver


def test_compile_expands_count_stride_and_gaps():
    epochs = compile_epochs([
        {"op": "read", "addr": 0, "count": 3, "stride": 64, "gap_ps": 10},
        {"op": "write", "addr": 4096},
        {"op": "fence"},
        {"op": "write_nt", "addr": 128},
    ])
    assert len(epochs) == 2
    first, second = epochs
    assert first.fenced and not second.fenced
    assert [r.addr for r in first.requests] == [0, 64, 128, 4096]
    assert [r.offset_ps for r in first.requests] == [0, 10, 20, 30]
    # program-order indices are global across epochs
    assert [r.index for r in first.requests] == [0, 1, 2, 3]
    assert [r.index for r in second.requests] == [4]
    # the fence resets the offset cursor
    assert second.requests[0].offset_ps == 0
    assert total_requests(epochs) == 5


def test_fence_count_emits_empty_epochs():
    epochs = compile_epochs([{"op": "fence", "count": 3}])
    assert len(epochs) == 3
    assert all(e.fenced and not e.requests for e in epochs)


def test_chained_plane_ops_rejected_with_pointer():
    with pytest.raises(ValueError, match="chained-plane"):
        compile_epochs([{"op": "store", "addr": 0}])
    with pytest.raises(ValueError, match="chained-plane"):
        compile_epochs([{"op": "flush", "addr": 0}])


def test_unknown_op_suggests():
    with pytest.raises(ValueError, match="unknown stream op"):
        compile_epochs([{"op": "raed"}])


def test_partition_covers_every_request_once():
    epochs = compile_epochs(synthetic_stream("rand", 512, fence_every=128,
                                             seed=3))
    inter = Interleaver(ndimms=4, granularity=4096, interleaved=True)
    plan = ShardPlan.for_target(4, 2)
    subs = partition(epochs, inter, plan)
    assert len(subs) == plan.effective
    # every shard sees every epoch slot (lockstep barrier requirement)
    assert all(len(shard) == len(epochs) for shard in subs)
    seen = sorted(r.index for shard in subs for ep in shard for r in ep)
    assert seen == list(range(total_requests(epochs)))
    # each request landed on the shard owning its DIMM, in program order
    for shard_id, shard in enumerate(subs):
        for ep in shard:
            assert [r.index for r in ep] == sorted(r.index for r in ep)
            for r in ep:
                dimm, _ = inter.map(r.addr)
                assert plan.shard_of(dimm) == shard_id


def test_synthetic_stream_deterministic_and_shaped():
    a = synthetic_stream("rand", 200, seed=7)
    b = synthetic_stream("rand", 200, seed=7)
    assert a == b
    assert a != synthetic_stream("rand", 200, seed=8)
    for kind in ("seq", "burst", "rand"):
        ops = synthetic_stream(kind, 300, fence_every=100)
        epochs = compile_epochs(ops)
        assert total_requests(epochs) == 300
        assert sum(1 for e in epochs if e.fenced) == 3


def test_synthetic_stream_unknown_kind():
    with pytest.raises(ValueError, match="unknown synthetic stream kind"):
        synthetic_stream("zipf", 10)


def test_burst_touches_every_dimm_per_epoch():
    ops = synthetic_stream("burst", 256, fence_every=64)
    epochs = compile_epochs(ops)
    inter = Interleaver(ndimms=4, granularity=4096, interleaved=True)
    for epoch in epochs:
        dimms = {inter.map(r.addr)[0] for r in epoch.requests}
        assert dimms == {0, 1, 2, 3}
