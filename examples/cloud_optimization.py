#!/usr/bin/env python3
"""Evaluate the paper's two architectural optimizations on cloud
workloads (Section V): Pre-translation and the Lazy cache.

Runs each workload on the full-system simulator (core + caches + TLBs +
VANS) in four configurations — baseline, Lazy cache, Pre-translation,
both — and reports speedups and TLB miss reductions, mirroring
Figure 13d/e.

Run:  python examples/cloud_optimization.py
"""

from dataclasses import replace

from repro.cpu import FullSystem
from repro.media.wear import WearConfig
from repro.optim import PreTranslation
from repro.vans import VansConfig, VansSystem
from repro.workloads import CLOUD_WORKLOADS

NOPS = 30000
WARMUP = 15000
#: wear threshold scaled to the trace length (preserving the ratio of
#: writes-per-migration the paper measures over billions of instructions)
MIGRATE_THRESHOLD = 250


def build_system(name: str, lazy: bool, pretrans: bool) -> FullSystem:
    cfg = VansConfig().with_lazy_cache(lazy)
    cfg = replace(cfg, dimm=replace(
        cfg.dimm, wear=WearConfig(migrate_threshold=MIGRATE_THRESHOLD)))
    pt = PreTranslation() if pretrans else None
    return FullSystem(VansSystem(cfg), name=name, pretranslation=pt)


def main() -> None:
    print(f"{'workload':<12} {'lazy':>6} {'pretrans':>9} {'both':>6} "
          f"{'tlb-mpki ratio':>15}")
    for name, trace_fn in CLOUD_WORKLOADS.items():
        reports = {}
        for tag, lazy, pretrans in (("base", False, False),
                                    ("lazy", True, False),
                                    ("pt", False, True),
                                    ("both", True, True)):
            system = build_system(f"{name}-{tag}", lazy, pretrans)
            trace = trace_fn(NOPS + WARMUP, mkpt=pretrans)
            reports[tag] = system.run(trace, warmup_ops=WARMUP)
        base = reports["base"].elapsed_ps
        s_lazy = base / reports["lazy"].elapsed_ps
        s_pt = base / reports["pt"].elapsed_ps
        s_both = base / reports["both"].elapsed_ps
        tlb = (reports["pt"].stlb_mpki / reports["base"].stlb_mpki
               if reports["base"].stlb_mpki else 1.0)
        print(f"{name:<12} {s_lazy:5.2f}x {s_pt:8.2f}x {s_both:5.2f}x "
              f"{tlb:15.2f}")
    print("\nPaper's result: Pre-translation 1-48% (pointer chasing),")
    print("Lazy cache ~10% average (concentrated writes), both 8-49%.")


if __name__ == "__main__":
    main()
