#!/usr/bin/env python3
"""Reverse engineer an unknown NVRAM DIMM with LENS.

This is the paper's core workflow: point LENS at a memory system it has
never seen and recover the microarchitecture from latency patterns
alone.  Here the "unknown" device is a *non-default* VANS configuration
(different buffer sizes than Optane), so you can check LENS against the
planted ground truth — then run it on the PMEP emulator and watch it
(correctly) find no buffer hierarchy at all.

Run:  python examples/characterize_nvram.py
"""

from dataclasses import replace

from repro.baselines import PMEPModel
from repro.common.units import KIB, MIB, pretty_size
from repro.lens import BufferProber
from repro.lens.report import characterize
from repro.media.wear import WearConfig
from repro.vans import VansConfig, VansSystem
from repro.vans.config import AitConfig, RmwConfig


def mystery_config() -> VansConfig:
    """A hypothetical next-gen DIMM: bigger RMW buffer, smaller AIT."""
    base = VansConfig()
    dimm = replace(
        base.dimm,
        rmw=RmwConfig(entries=128, entry_bytes=256),    # 32KB
        ait=AitConfig(entries=2048, entry_bytes=4096),  # 8MB
        wear=WearConfig(migrate_threshold=2000),
    )
    return replace(base, dimm=dimm)


def main() -> None:
    config = mystery_config()
    print("Characterizing a mystery NVRAM DIMM with LENS...\n")
    chara = characterize(
        lambda: VansSystem(config),
        interleaved_factory=lambda: VansSystem(config.with_dimms(6)),
        overwrite_iterations=config.dimm.wear.migrate_threshold * 4,
        tail_scan_bytes=config.dimm.wear.migrate_threshold * 384,
    )
    print(chara.render())

    truth = config.describe()
    truth["rmw_entry"] = config.dimm.rmw.entry_bytes
    truth["ait_entry"] = config.dimm.ait.entry_bytes
    verdicts = chara.compare_to_truth(truth)
    print("\nAgainst the planted ground truth:")
    for name, ok in verdicts.items():
        print(f"  {name:<14} {'recovered' if ok else 'MISSED'}")

    print("\nExpected: RMW 32K (not Optane's 16K), AIT 8M (not 16M).")

    print("\nNow LENS on the PMEP emulator (a slower DRAM):")
    report = BufferProber(lambda: PMEPModel()).run(probe_hierarchy=False)
    caps = [pretty_size(c) for c in report.read_capacities]
    print(f"  read-buffer inflections found: {caps or 'none'}")
    print("  -> PMEP has no on-DIMM buffer structure to discover, which")
    print("     is exactly why it mispredicts real NVRAM behaviour.")


if __name__ == "__main__":
    main()
