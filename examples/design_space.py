#!/usr/bin/env python3
"""Design-space exploration with VANS's modular configuration.

The paper positions VANS as a vehicle for exploring NVRAM architecture
variants ("users can reconfigure VANS based on the new parameters").
This example sweeps two design axes and reports their performance
effects:

1. RMW buffer size — how much SRAM buys how much pointer-chasing
   latency;
2. DIMM population — bandwidth and latency scaling with interleaving.

Run:  python examples/design_space.py
"""

from dataclasses import replace

from repro.common.rng import make_rng
from repro.common.units import KIB, MIB, NS, pretty_size
from repro.lens.microbench.stride import Stride
from repro.vans import VansConfig, VansSystem
from repro.vans.config import RmwConfig


def chase_latency(system: VansSystem, region: int, n: int = 1200) -> float:
    rng = make_rng(3, f"ds-{region}-{system.name}")
    system.warm_fill(0, region)
    lines = region // 64
    now, total = 0, 0
    for _ in range(n):
        done = system.read(rng.randrange(lines) * 64, now)
        total += done - now
        now = done
    return total / n / NS


def sweep_rmw_size() -> None:
    print("RMW buffer size sweep (random reads over a 64KB working set):")
    print(f"  {'rmw size':>9}  latency")
    for entries in (32, 64, 128, 256):
        cfg = VansConfig()
        cfg = replace(cfg, dimm=replace(cfg.dimm,
                                        rmw=RmwConfig(entries=entries)))
        lat = chase_latency(VansSystem(cfg), 64 * KIB)
        size = pretty_size(entries * 256)
        print(f"  {size:>9}  {lat:6.1f} ns")
    print("  -> once the buffer covers the working set, extra SRAM is "
          "wasted;\n     the paper's 16KB sits below typical working sets, "
          "hence the 16KB cliff.\n")


def sweep_dimm_count() -> None:
    print("DIMM population sweep (4KB interleaving):")
    print(f"  {'dimms':>6}  {'chase 64KB':>11}  {'chase 8MB':>10}  "
          f"{'read bw':>8}")
    stride = Stride(read_window=32)
    for ndimms in (1, 2, 4, 6):
        cfg = VansConfig().with_dimms(ndimms)
        lat_small = chase_latency(VansSystem(cfg), 64 * KIB)
        lat_big = chase_latency(VansSystem(cfg), 8 * MIB)
        bw = stride.read_bandwidth_gbs(VansSystem(cfg), 4 * MIB)
        print(f"  {ndimms:>6}  {lat_small:9.1f} ns  {lat_big:8.1f} ns  "
              f"{bw:5.1f} GB/s")
    print("  -> interleaving multiplies effective buffer reach and "
          "bandwidth,\n     but single-access latency barely moves "
          "(Fig. 10b).")


def main() -> None:
    sweep_rmw_size()
    sweep_dimm_count()


if __name__ == "__main__":
    main()
