#!/usr/bin/env python3
"""Simulation as a service: a session against a `repro-serve` daemon.

Hosts a daemon in-process (so the example is self-contained), then
walks the client API: run a named experiment through a session, reuse
warm-cached targets, drive a raw request stream, and bounce off the
per-tenant quota.

Run:  python examples/serve_client.py

Against an external daemon, start one first (`repro-serve daemon
--port 7421`) and point `ServeClient` at it instead of
`running_daemon`.
"""

from repro.serve import ServeClient
from repro.serve.server import running_daemon
from repro.tools.serve_cli import payload_fingerprint

EXPERIMENT = "fig1"
STREAM_OPS = [
    {"op": "read", "addr": 0, "count": 2048, "stride": 64},
    {"op": "write", "addr": 0, "count": 1024, "stride": 64},
    {"op": "fence"},
]


def main() -> None:
    with running_daemon(workers=2, warm_cache=8, max_active=1,
                        max_queued=1) as daemon:
        print(f"daemon up on 127.0.0.1:{daemon.port}")

        with ServeClient("127.0.0.1", daemon.port,
                         tenant="example") as client:
            print(f"session {client.session} "
                  f"(protocol {client.welcome['protocol']}, "
                  f"limits {client.welcome['limits']})")

            # A named experiment, exactly as the batch runner computes
            # it -- the served payload is bit-identical.
            reply = client.run_experiment(EXPERIMENT, seed=42)
            doc = reply["results"][0]
            print(f"\n{doc['experiment']}: {doc['title']}")
            for key, value in list(doc["metrics"].items())[:4]:
                print(f"  {key}: {value}")
            print(f"  manifest session: {reply['manifest']['session']}")

            # Run it again: the worker reuses its warm-cached targets
            # (reset to post-construction state), skipping rebuilds.
            again = client.run_experiment(EXPERIMENT, seed=42)
            cache = again["warm_cache"]
            print(f"\nwarm cache after rerun: {cache['hits']} hit(s), "
                  f"{cache['misses']} miss(es)")
            assert ([payload_fingerprint(d) for d in again["results"]]
                    == [payload_fingerprint(d) for d in reply["results"]]), \
                "warm reuse must be bit-identical"

            # A raw request stream against any registry target.
            stream = client.run_stream("vans", STREAM_OPS)["stream"]
            print(f"\nstream on vans: {stream['ops']} ops, "
                  f"sim end {stream['sim_end_ps']} ps, "
                  f"mean latency {stream['mean_latency_ps']:.0f} ps")

            # Backpressure: this daemon allows 1 active + 1 queued job
            # per tenant, so a third concurrent submit is rejected with
            # a 429-style reply instead of buffering without bound.
            busy = [{"op": "read", "count": 20_000, "stride": 64}]
            first = client.submit_stream("vans", busy)
            second = client.submit_stream("vans", busy)
            third = client.submit_stream("vans", busy)
            rejection = client.wait(third, raise_on_error=False)
            print(f"\nthird concurrent submit: {rejection['type']} "
                  f"(code {rejection['code']})")
            client.wait(first)
            client.wait(second)

    print("\ndaemon drained and shut down cleanly")


if __name__ == "__main__":
    main()
