#!/usr/bin/env python3
"""Crash consistency on App Direct NVRAM: why the fence placement in a
persistent-memory protocol matters.

Builds an append-only log two ways — the correct protocol (persist the
entry *before* publishing the count) and the classic buggy one (no
ordering fence) — and crash-tests both with the functional memory's
partial-persistence model.  Also contrasts App Direct with Memory mode,
where no amount of fencing makes anything durable.

Run:  python examples/persistent_log.py
"""

from repro.pmlib import PersistentLog, UnorderedLog
from repro.vans import MemoryModeSystem
from repro.vans.functional import FunctionalMemory


def crash_mid_append(log_cls, adversarial: bool):
    """Append one entry fully, crash in the middle of the second."""
    memory = FunctionalMemory()
    log = log_cls(memory)
    log.append("entry-0")
    steps = log.append_steps("entry-1")
    next(steps)                      # entry data stored
    if log_cls.ORDERED:
        next(steps)                  # ...and fenced
    next(steps)                      # count stored (not yet fenced)
    if adversarial:
        # worst legal outcome: the count line reaches the ADR domain,
        # anything still pending does not
        header = log._header_addr()
        if header in memory._pending:
            memory._persistent[header] = memory._pending.pop(header)
        memory.crash(pending_policy="drop")
    else:
        memory.crash(pending_policy="random", seed=7)
    return PersistentLog.recover(memory)


def main() -> None:
    print("Crash injected between 'count stored' and the commit fence,")
    print("with the adversarial partial-persistence outcome:\n")

    rec = crash_mid_append(PersistentLog, adversarial=True)
    print(f"  ordered protocol : count={rec.count} entries={rec.entries} "
          f"torn={rec.torn}")
    rec = crash_mid_append(UnorderedLog, adversarial=True)
    print(f"  missing fence    : count={rec.count} entries={rec.entries} "
          f"torn={rec.torn}   <-- committed garbage!")

    print("\nExhaustive sweep (every crash step x pending outcome,")
    print("including the adversarial header-persists-first outcome):")
    for log_cls in (PersistentLog, UnorderedLog):
        torn_cases = 0
        total = 0
        nsteps = 4 if log_cls.ORDERED else 3
        for step in range(nsteps):
            for policy in ("drop", "keep", "adversarial"):
                memory = FunctionalMemory()
                log = log_cls(memory)
                log.append("a")
                steps = log.append_steps("b")
                for _ in range(step + 1):
                    next(steps, None)
                if policy == "adversarial":
                    header = log._header_addr()
                    if header in memory._pending:
                        memory._persistent[header] = \
                            memory._pending.pop(header)
                    memory.crash(pending_policy="drop")
                else:
                    memory.crash(pending_policy=policy)
                if PersistentLog.recover(memory).torn:
                    torn_cases += 1
                total += 1
        name = log_cls.__name__
        print(f"  {name:<14} {torn_cases}/{total} crash scenarios torn")

    print("\nMemory mode for contrast (no persistence path at all):")
    memmode = MemoryModeSystem()
    now = memmode.write(0, 0)
    now = memmode.fence(now)   # a no-op: Memory mode is volatile
    print(f"  fence returned immediately (t={now}ps unchanged semantics);")
    print("  Memory mode trades persistence for a transparent DRAM cache.")


if __name__ == "__main__":
    main()
