#!/usr/bin/env python3
"""Quickstart: build a VANS Optane-DIMM system, poke it, watch the
on-DIMM buffer tiers appear.

Run:  python examples/quickstart.py
"""

from repro import VansConfig, VansSystem
from repro.common.rng import make_rng
from repro.common.units import KIB, MIB, NS, pretty_size


def pointer_chase(system: VansSystem, region: int, accesses: int = 1500,
                  seed: int = 1) -> float:
    """Average dependent-read latency over a random region (ns/line)."""
    rng = make_rng(seed, f"quickstart-{region}")
    system.warm_fill(0, region)  # steady-state buffer contents
    lines = region // 64
    now = 0
    total = 0
    for _ in range(accesses):
        done = system.read(rng.randrange(lines) * 64, now)
        total += done - now
        now = done
    return total / accesses / NS


def main() -> None:
    config = VansConfig()
    print("Simulated Optane DIMM configuration:")
    for key, value in config.describe().items():
        print(f"  {key:<18} {value}")

    print("\nPointer-chasing read latency (the Fig. 1b/5a curve):")
    print(f"  {'region':>8}  latency")
    for region in (1 * KIB, 4 * KIB, 16 * KIB, 64 * KIB, 1 * MIB,
                   16 * MIB, 64 * MIB):
        lat = pointer_chase(VansSystem(config), region)
        bar = "#" * int(lat / 12)
        print(f"  {pretty_size(region):>8}  {lat:6.1f} ns  {bar}")
    print("\nThe jumps past 16K and 16M are the RMW buffer (16KB SRAM)")
    print("and AIT buffer (16MB on-DIMM DRAM) overflowing.")

    print("\nStore accept latency (WPQ at 512B, LSQ at 4KB):")
    for region in (256, 1 * KIB, 4 * KIB, 16 * KIB, 64 * KIB):
        system = VansSystem(config)
        lines = list(range(region // 64))
        rng = make_rng(2, f"st-{region}")
        now, total, count = 0, 0, 0
        while count < 1200:
            rng.shuffle(lines)
            for line in lines:
                accept = system.write(line * 64, now)
                total += accept - now
                now = accept
                count += 1
            now = system.fence(now)
        lat = total / count / NS
        print(f"  {pretty_size(region):>8}  {lat:6.1f} ns")

    print("\nInternal counters after those runs:")
    interesting = ("dimm.rmw_hits", "dimm.rmw_misses", "dimm.ait_misses",
                   "dimm.combined_write_ops", "dimm.partial_write_ops")
    counters = system.counters()
    for key in interesting:
        print(f"  {key:<26} {counters.get(key, 0)}")


if __name__ == "__main__":
    main()
