"""Figure 12 — cloud-workload profiling."""

from repro.experiments import fig12
from repro.experiments.common import Scale


def test_fig12a_redis_profile(run_once):
    (result,) = run_once(fig12.run_redis, Scale.SMOKE)
    ratios = dict((r[0], r[1]) for r in result.rows)
    assert ratios["cpi"] > 4
    assert ratios["llc_miss"] > 2


def test_fig12b_ycsb_hot_lines(run_once):
    (result,) = run_once(fig12.run_ycsb, Scale.SMOKE)
    rows = {r[0]: r for r in result.rows}
    assert rows["writes per line"][3] > 50
    assert rows["wear migrations"][1] > rows["wear migrations"][2]
