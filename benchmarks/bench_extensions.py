"""Beyond-the-figures studies: thread scaling and design ablations."""

from repro.experiments import ablation, scaling
from repro.experiments.common import Scale


def test_scaling_reads(run_once):
    (result,) = run_once(scaling.run_read_scaling, Scale.SMOKE)
    assert result.metrics["nvram_scaling_16t"] < 4.0


def test_scaling_writes(run_once):
    (result,) = run_once(scaling.run_write_scaling, Scale.SMOKE)
    assert result.metrics["nvram_scaling_16t"] < 1.6


def test_ablation_write_combining(run_once):
    (result,) = run_once(ablation.run_write_combining, Scale.SMOKE)
    assert result.metrics["combining_gain"] > 1.5


def test_ablation_engine_hold(run_once):
    (result,) = run_once(ablation.run_engine_hold, Scale.SMOKE)
    assert result.metrics["plateau_ratio"] > 1.3


def test_ablation_wear_decay(run_once):
    (result,) = run_once(ablation.run_wear_decay, Scale.SMOKE)
    assert result.metrics["plain_migrations"] > result.metrics["aged_migrations"]


def test_ablation_critical_first(run_once):
    (result,) = run_once(ablation.run_critical_block_first, Scale.SMOKE)
    assert result.metrics["latency_saving_ns"] > 100


def test_bandwidth_matrix(run_once):
    from repro.experiments import bandwidth_matrix
    (result,) = run_once(bandwidth_matrix.run, Scale.SMOKE)
    assert result.metrics["seq_over_rand_write"] > 5
    assert result.metrics["mixed_vs_pure_avg"] < 0.9
