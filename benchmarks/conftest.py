"""Benchmark plumbing.

Each ``bench_*`` file regenerates one of the paper's tables/figures.
``pytest benchmarks/ --benchmark-only`` runs them all; the rendered
rows/series are printed so the numbers can be diffed against the paper
(see EXPERIMENTS.md for the recorded comparison).

Experiments run once per benchmark (rounds=1): they are deterministic
simulations; the benchmark timing records the harness cost, while the
benchmark's *output* is the experiment data itself.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark, capsys):
    """Run an experiment exactly once under pytest-benchmark and print
    its rendered rows."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        results = result if isinstance(result, tuple) else (result,)
        with capsys.disabled():
            print()
            for item in results:
                print(item.render())
                print()
        return results

    return _run
