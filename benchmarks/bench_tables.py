"""Tables I, II, IV and V."""

from repro.experiments import tables
from repro.experiments.common import Scale


def test_table1_capability_matrix(run_once):
    (result,) = run_once(tables.run_table1, Scale.SMOKE)
    assert len(result.rows) == 4


def test_table2_lens_overview(run_once):
    (result,) = run_once(tables.run_table2, Scale.SMOKE)
    assert len(result.rows) == 8


def test_table4_spec_calibration(run_once):
    (result,) = run_once(tables.run_table4, Scale.SMOKE)
    assert result.metrics["worst_relative_mpki_error"] < 0.35


def test_table5_configuration(run_once):
    (result,) = run_once(tables.run_table5, Scale.SMOKE)
    assert "16K" in result.render()
