"""Extension studies: energy accounting and NUMA penalties."""

from repro.experiments import energy_study, numa_study
from repro.experiments.common import Scale


def test_energy_read_vs_write(run_once):
    (result,) = run_once(energy_study.run_read_vs_write, Scale.SMOKE)
    assert result.metrics["random_write_over_seq_read"] > 10


def test_energy_lazy_cache(run_once):
    (result,) = run_once(energy_study.run_lazy_cache_energy, Scale.SMOKE)
    assert result.metrics["energy_saving"] > 0.3


def test_numa_penalties(run_once):
    (result,) = run_once(numa_study.run, Scale.SMOKE)
    assert result.metrics["nvram_added_ns"] > 100
