"""Figure 5 — LENS buffer prober curves."""

from repro.common.units import KIB, MIB
from repro.experiments import fig05
from repro.experiments.common import Scale


def test_fig5a_latency_64b_block(run_once):
    (result,) = run_once(fig05.run_latency, Scale.SMOKE, 64)
    assert result.metrics["read_inflections"] == str([16 * KIB, 16 * MIB])
    assert result.metrics["write_inflections"] == str([512, 4 * KIB])


def test_fig5b_latency_256b_block(run_once):
    (result,) = run_once(fig05.run_latency, Scale.SMOKE, 256)
    # with 256B PC-blocks the fills amortize: curve is shallower
    assert max(result.series["ld"].values) < 250


def test_fig5c_read_after_write(run_once):
    (result,) = run_once(fig05.run_raw, Scale.SMOKE)
    assert result.metrics["raw_over_rpw_small"] > 1.5
    assert result.metrics["raw_over_rpw_large"] < 1.2


def test_fig5d_tlb_mpki_flat(run_once):
    (result,) = run_once(fig05.run_tlb, Scale.SMOKE)
    assert result.metrics["mpki_spread"] < 5.0
