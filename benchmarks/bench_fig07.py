"""Figure 7 — interleaving and wear-leveling policy curves."""

import pytest

from repro.common.units import KIB
from repro.experiments import fig07
from repro.experiments.common import Scale


def test_fig7a_interleaving(run_once):
    (result,) = run_once(fig07.run_interleaving, Scale.SMOKE)
    assert result.metrics["interleave_granularity"] == 4 * KIB
    assert result.metrics["speedup_at_16k"] > 1.0


def test_fig7b_overwrite_tails(run_once):
    (result,) = run_once(fig07.run_tail_latency, Scale.SMOKE)
    assert result.metrics["tail_interval_iters"] == pytest.approx(14000,
                                                                  rel=0.1)
    assert result.metrics["tail_over_median"] > 20


def test_fig7c_tail_ratio_vs_region(run_once):
    (result,) = run_once(fig07.run_tail_ratio, Scale.SMOKE)
    assert result.metrics["wear_block_detected"] == 64 * KIB


def test_fig7d_tlb_flat(run_once):
    (result,) = run_once(fig07.run_tlb, Scale.SMOKE)
    assert result.metrics["max_misses_after_warmup"] == 0
