"""Figure 3 — conventional-simulator inaccuracy."""

from repro.experiments import fig03
from repro.experiments.common import Scale


def test_fig3a_simulator_accuracy(run_once):
    (result,) = run_once(fig03.run_accuracy, Scale.SMOKE)
    assert result.metrics["vans_minus_best_baseline"] > 0.15


def test_fig3b_pcm_latency_curve(run_once):
    (result,) = run_once(fig03.run_pcm_latency, Scale.SMOKE)
    assert result.metrics["pcm_flatness"] < 2.0
