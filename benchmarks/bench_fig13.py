"""Figure 13 — Lazy cache / Pre-translation evaluation."""

from repro.experiments import fig13
from repro.experiments.common import Scale


def test_fig13_optimizations(run_once):
    (result,) = run_once(fig13.run, Scale.SMOKE)
    by_name = {row[0]: row for row in result.rows}
    assert by_name["linkedlist"][2] > 1.2   # Pre-translation speedup
    assert by_name["ycsb"][1] > 1.05        # Lazy cache speedup
    assert result.metrics["tlb_mpki_mean_ratio"] < 0.95
