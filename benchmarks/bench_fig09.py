"""Figure 9 — VANS microbenchmark validation."""

from repro.experiments import fig09
from repro.experiments.common import Scale


def test_fig9a_single_dimm_latency(run_once):
    (result,) = run_once(fig09.run_latency, Scale.SMOKE, 1)
    assert result.metrics["acc_lat_ld"] > 0.85


def test_fig9b_interleaved_latency(run_once):
    (result,) = run_once(fig09.run_latency, Scale.SMOKE, 6)
    assert result.metrics["acc_lat_ld"] > 0.7


def test_fig9c_rmw_read_amplification(run_once):
    (result,) = run_once(fig09.run_read_amplification, Scale.SMOKE)
    last = result.rows[-1]
    assert abs(last[1] - last[2]) < 0.5


def test_fig9d_overwrite_tails(run_once):
    (result,) = run_once(fig09.run_overwrite, Scale.SMOKE)
    assert result.metrics["interval_accuracy"] > 0.8


def test_fig9e_overall_accuracy(run_once):
    (result,) = run_once(fig09.run_accuracy, Scale.SMOKE)
    # the paper reports 86.5% average accuracy
    assert result.metrics["average_accuracy"] > 0.75
