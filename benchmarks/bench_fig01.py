"""Figure 1 — PMEP vs Optane motivating discrepancy."""

from repro.experiments import fig01
from repro.experiments.common import Scale


def test_fig1a_bandwidth(run_once):
    (result,) = run_once(fig01.run_bandwidth, Scale.SMOKE)
    assert result.metrics["pmep_store_over_nt"] > 1.5
    assert result.metrics["optane_nt_over_store"] > 1.5


def test_fig1b_latency(run_once):
    (result,) = run_once(fig01.run_latency, Scale.SMOKE)
    assert result.metrics["pmep_flatness"] < 1.4
    assert result.metrics["vans_dynamic_range"] > 2.0
