"""Figures 4/8 — the full LENS characterization vs ground truth."""

from repro.experiments import characterize
from repro.experiments.common import Scale


def test_fig8_characterization(run_once):
    (result,) = run_once(characterize.run, Scale.SMOKE)
    assert result.metrics["parameters_correct"] == \
        result.metrics["parameters_total"]
