"""Figure 10 — sensitivity studies."""

from repro.experiments import fig10
from repro.experiments.common import Scale


def test_fig10a_media_capacity_invariance(run_once):
    (result,) = run_once(fig10.run_capacity, Scale.SMOKE)
    assert result.metrics["max_relative_spread"] < 0.05


def test_fig10b_dimm_count_sensitivity(run_once):
    (result,) = run_once(fig10.run_dimm_count, Scale.SMOKE)
    for row in result.rows:
        assert row[4] <= row[1] * 1.02
