"""Figure 11 — SPEC full-system validation."""

from repro.experiments import fig11
from repro.experiments.common import Scale


def test_fig11_spec_validation(run_once):
    (result,) = run_once(fig11.run, Scale.SMOKE)
    assert result.metrics["vans_speedup_accuracy_geomean"] > \
        result.metrics["ramulator_speedup_accuracy_geomean"]
    assert result.metrics["vans_speedup_accuracy_geomean"] > 0.8
