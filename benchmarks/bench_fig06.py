"""Figure 6 — amplification scores and buffer entry sizes."""

from repro.common.units import KIB
from repro.experiments import fig06
from repro.experiments.common import Scale


def test_fig6a_read_amplification(run_once):
    (result,) = run_once(fig06.run_read, Scale.SMOKE)
    assert result.metrics["rmw_entry_size"] == 256
    assert result.metrics["ait_entry_size"] == 4 * KIB


def test_fig6b_write_amplification(run_once):
    (result,) = run_once(fig06.run_write, Scale.SMOKE)
    assert result.metrics["lsq_combine_size"] == 256
    assert result.metrics["wpq_flush_bytes"] == 512
